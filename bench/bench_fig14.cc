/**
 * @file
 * Reproduces paper Figure 14: speedup over a single out-of-order core
 * (DynaSpAM's gem5 parameters) for DynaSpAM and for M-64 — the
 * smallest MESA configuration — with parallel optimizations, and
 * additionally with runtime iterative reconfiguration. SRAD and
 * B+Tree do not qualify for acceleration on MESA (C1/C2), as in the
 * paper. Paper averages: DynaSpAM 1.42x, M-64 1.86x (opt), 2.01x
 * (+ iterative reconfiguration).
 */

#include "baseline/dynaspam.hh"
#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

namespace
{

double
mesaSpeedup(const workloads::Kernel &kernel, uint64_t base_cycles,
            bool iterative)
{
    core::MesaParams params;
    params.accel = accel::AccelParams::m64();
    params.host_core = cpu::dynaspamBaselineCore();
    params.iterative_optimization = iterative;
    // M-64's capacity bounds C1.
    params.monitor.max_instructions = params.accel.capacity();

    const MesaRun run = runMesa(kernel, params);
    if (run.result.offloads.empty())
        return 1.0; // did not qualify: runs entirely on the CPU
    return double(base_cycles) / double(run.result.total_cycles);
}

} // namespace

int
main(int argc, char **argv)
{
    const int jobs = parseJobs(argc, argv);
    applyCacheDir(argc, argv);
    // The benchmarks shared with the DynaSpAM evaluation.
    const char *names[] = {"backprop", "bfs",  "hotspot",
                           "kmeans",   "lud",  "nn",
                           "pathfinder", "srad", "b+tree"};

    TextTable table("Figure 14: speedup vs single OoO core "
                    "(DynaSpAM parameters), M-64");
    table.header({"benchmark", "DynaSpAM", "M-64 (opt)",
                  "M-64 (+reconfig)"});

    std::vector<double> s_dyn, s_opt, s_rec;

    struct Row
    {
        double dyn = 1.0, opt = 1.0, rec = 1.0;
        bool mesa_na = false;
    };
    const auto rows = shardedRows<Row>(
        std::size(names), jobs, [&](size_t i) -> Row {
            const auto kernel =
                workloads::kernelByName(names[i], {16384});
            const CpuRun base = runSingleCoreBaseline(
                kernel, cpu::dynaspamBaselineCore());

            // DynaSpAM: map the hot loop onto the 1D in-pipeline
            // fabric, which shares the core's memory system
            // (measured AMAT).
            baseline::DynaSpamParams dp;
            dp.mem_latency = std::max(2.0, base.run.amat);
            baseline::DynaSpamMapper dynaspam(dp);
            Row r;
            auto ldfg = dfg::Ldfg::build(kernel.loopBody());
            if (ldfg) {
                const auto res = dynaspam.map(*ldfg);
                if (res.qualified) {
                    const uint64_t accel =
                        res.cyclesFor(kernel.iterations);
                    if (accel > 0)
                        r.dyn = double(base.run.cycles) /
                                double(accel);
                }
            }
            // DynaSpAM cannot beat its own fabric's limits, but it
            // never loses either (falls back to the core).
            r.dyn = std::max(r.dyn, 1.0);

            r.opt = mesaSpeedup(kernel, base.run.cycles, false);
            r.rec = mesaSpeedup(kernel, base.run.cycles, true);
            r.mesa_na = r.opt == 1.0 && !kernel.mesa_supported;
            return r;
        });

    for (size_t i = 0; i < std::size(names); ++i) {
        const Row &r = rows[i];
        s_dyn.push_back(r.dyn);
        s_opt.push_back(r.opt);
        s_rec.push_back(r.rec);
        table.row({names[i], TextTable::num(r.dyn),
                   r.mesa_na ? "n/q" : TextTable::num(r.opt),
                   r.mesa_na ? "n/q" : TextTable::num(r.rec)});
    }

    table.row({"average", TextTable::num(mean(s_dyn)),
               TextTable::num(mean(s_opt)), TextTable::num(mean(s_rec))});
    table.print(std::cout);

    std::cout << "\npaper: DynaSpAM 1.42x, M-64 1.86x with parallel "
                 "optimizations, 2.01x with iterative "
                 "reconfiguration; srad/b+tree do not qualify on "
                 "MESA\n";
    return 0;
}
