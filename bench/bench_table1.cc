/**
 * @file
 * Reproduces paper Table 1: hardware area and power breakdown by
 * component (128-PE configuration, FreePDK15 synthesis constants).
 */

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

namespace
{

std::string
fmtArea(double um2)
{
    if (um2 >= 1e6)
        return TextTable::num(um2 / 1e6, 3) + " mm^2";
    return TextTable::num(um2, 1) + " um^2";
}

std::string
fmtPower(double w)
{
    if (w >= 0.05)
        return TextTable::num(w, 2) + " W";
    return TextTable::num(w * 1e3, 3) + " mW";
}

void
printSection(const char *title,
             const std::vector<power::ComponentRow> &rows)
{
    TextTable table(title);
    table.header({"component", "area", "power"});
    for (const auto &row : rows) {
        std::string name;
        for (int i = 0; i < row.indent; ++i)
            name += "- ";
        name += row.name;
        table.row({name, fmtArea(row.area_um2), fmtPower(row.power_w)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    power::PowerModel pm(accel::AccelParams::m128());

    std::cout << "Table 1: hardware area and power breakdown "
                 "(M-128, FreePDK15)\n\n";
    printSection("MESA Extensions", pm.mesaExtensionRows());
    printSection("CPU Core Additions", pm.cpuAdditionRows());
    printSection("Spatial Accelerator", pm.acceleratorRows());

    std::cout << "MESA controller total: "
              << TextTable::num(pm.mesaAreaMm2(), 3)
              << " mm^2 (paper: 0.502 mm^2, <10% of a core)\n";
    std::cout << "Accelerator total: "
              << TextTable::num(pm.acceleratorAreaMm2(), 2)
              << " mm^2 (paper: 26.56 mm^2)\n";
    return 0;
}
