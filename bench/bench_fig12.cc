/**
 * @file
 * Reproduces paper Figure 12: per-iteration IPC against a similarly
 * configured OpenCGRA baseline. Two comparisons per benchmark:
 * MESA with all optimizations disabled (pure spatial map vs the
 * compiler's modulo schedule — MESA falls slightly behind), and MESA
 * with its common optimizations enabled (tiling, pipelining — MESA
 * wins clearly, largely from loop parallelization).
 */

#include "baseline/opencgra.hh"
#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

namespace
{

/** Accelerated per-iteration cycles for one optimization setting. */
double
mesaPerIterCycles(const workloads::Kernel &kernel, bool optimized)
{
    core::MesaParams params;
    params.accel = accel::AccelParams::m128();
    // "No optimizations" disables MESA's loop-level and memory
    // optimizations; iteration overlap is inherent to dataflow
    // execution (OpenCGRA's modulo schedule is pipelined too).
    params.enable_tiling = optimized;
    params.enable_pipelining = true;
    params.enable_vectorization = optimized;
    params.enable_forwarding = optimized;
    params.enable_prefetch = optimized;
    params.iterative_optimization = optimized;

    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);
    core::MesaController mesa(params, memory);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    // Execute any pre-loop setup (e.g. bfs level preamble).
    uint64_t guard = 0;
    while (!emu.halted() && emu.state().pc != kernel.loop_start &&
           guard++ < 1000000) {
        emu.step();
    }

    auto os = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                               kernel.parallel);
    if (!os || os->accel_iterations == 0)
        return 0.0;
    return double(os->accel_cycles) / double(os->accel_iterations);
}

} // namespace

int
main(int argc, char **argv)
{
    const int jobs = parseJobs(argc, argv);
    applyCacheDir(argc, argv);
    // The eight OpenCGRA-compatible benchmarks (paper §6.2).
    const char *names[] = {"nn",       "kmeans",       "hotspot",
                           "cfd",      "gaussian",     "lavaMD",
                           "pathfinder", "streamcluster"};
    const size_t n = std::size(names);

    TextTable table("Figure 12: per-iteration IPC vs OpenCGRA "
                    "(M-128-equivalent backends)");
    table.header({"benchmark", "OpenCGRA", "MESA (no opt)",
                  "MESA (opt)"});

    struct Row
    {
        bool ok = false;
        double ipc_cgra = 0, ipc_noopt = 0, ipc_opt = 0;
    };
    const auto rows = shardedRows<Row>(n, jobs, [&](size_t i) -> Row {
        const auto kernel = workloads::kernelByName(names[i], {4096});
        const auto body = kernel.loopBody();
        const double instrs = double(body.size());

        auto ldfg = dfg::Ldfg::build(body);
        if (!ldfg)
            return {};
        baseline::OpenCgraScheduler cgra(accel::AccelParams::m128());
        const auto sched = cgra.schedule(*ldfg);

        Row r;
        r.ok = true;
        r.ipc_cgra = instrs / sched.perIterationCycles();
        const double cyc_noopt = mesaPerIterCycles(kernel, false);
        const double cyc_opt = mesaPerIterCycles(kernel, true);
        r.ipc_noopt = cyc_noopt > 0 ? instrs / cyc_noopt : 0;
        r.ipc_opt = cyc_opt > 0 ? instrs / cyc_opt : 0;
        return r;
    });

    std::vector<double> ratio_noopt, ratio_opt;
    for (size_t i = 0; i < n; ++i) {
        const Row &r = rows[i];
        if (!r.ok) {
            table.row({names[i], "n/a", "n/a", "n/a"});
            continue;
        }
        ratio_noopt.push_back(r.ipc_noopt / r.ipc_cgra);
        ratio_opt.push_back(r.ipc_opt / r.ipc_cgra);
        table.row({names[i], TextTable::num(r.ipc_cgra),
                   TextTable::num(r.ipc_noopt),
                   TextTable::num(r.ipc_opt)});
    }
    table.print(std::cout);

    std::cout << "\nMESA/OpenCGRA IPC ratio: no-opt geomean "
              << TextTable::num(geomean(ratio_noopt))
              << ", opt geomean " << TextTable::num(geomean(ratio_opt))
              << "\n";
    std::cout << "paper: MESA falls slightly behind on pure "
                 "scheduling; wins clearly with optimizations\n";
    return 0;
}
