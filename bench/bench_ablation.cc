/**
 * @file
 * Ablation harness for the design choices DESIGN.md calls out:
 * measures each optimization's contribution by disabling it alone
 * (one-factor-at-a-time) against the full configuration, across a
 * representative kernel set on M-128, plus the two extensions
 * (unrolling, time-multiplexing) enabled alone.
 */

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

namespace
{

uint64_t
totalCycles(const workloads::Kernel &kernel,
            const std::function<void(core::MesaParams &)> &tweak)
{
    core::MesaParams params;
    tweak(params);
    const MesaRun run = runMesa(kernel, params);
    return run.result.total_cycles;
}

} // namespace

int
main()
{
    const char *names[] = {"nn", "kmeans", "hotspot", "cfd",
                           "pathfinder", "gaussian"};

    TextTable table(
        "Ablation: slowdown when disabling one optimization "
        "(total cycles relative to the full configuration, M-128)");
    table.header({"benchmark", "-tiling", "-pipelining", "-vector",
                  "-forward", "-prefetch", "-iterative", "+unroll",
                  "+timemux"});

    for (const char *name : names) {
        const auto kernel = workloads::kernelByName(name, {8192});
        const uint64_t full =
            totalCycles(kernel, [](core::MesaParams &) {});

        auto rel = [&](const std::function<void(core::MesaParams &)>
                           &tweak) {
            const uint64_t cyc = totalCycles(kernel, tweak);
            return TextTable::num(double(cyc) / double(full));
        };

        table.row({
            name,
            rel([](auto &p) { p.enable_tiling = false; }),
            rel([](auto &p) { p.enable_pipelining = false; }),
            rel([](auto &p) { p.enable_vectorization = false; }),
            rel([](auto &p) { p.enable_forwarding = false; }),
            rel([](auto &p) { p.enable_prefetch = false; }),
            rel([](auto &p) { p.iterative_optimization = false; }),
            rel([](auto &p) { p.enable_unrolling = true; }),
            rel([](auto &p) {
                p.enable_time_multiplexing = true;
                p.accel = accel::AccelParams::m64();
            }),
        });
    }
    table.print(std::cout);

    std::cout << "\n>1.00 = slower without the optimization (its "
                 "contribution); the extension columns show total "
                 "cycles with the extension enabled (time-multiplex "
                 "runs on the smaller M-64).\n";
    return 0;
}
