/**
 * @file
 * Ablation harness for the design choices DESIGN.md calls out:
 * measures each optimization's contribution by disabling it alone
 * (one-factor-at-a-time) against the full configuration, across a
 * representative kernel set on M-128, plus the two extensions
 * (unrolling, time-multiplexing) enabled alone.
 */

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

namespace
{

uint64_t
totalCycles(const workloads::Kernel &kernel,
            const std::function<void(core::MesaParams &)> &tweak)
{
    core::MesaParams params;
    tweak(params);
    const MesaRun run = runMesa(kernel, params);
    return run.result.total_cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    const int jobs = parseJobs(argc, argv);
    applyCacheDir(argc, argv);
    const char *names[] = {"nn", "kmeans", "hotspot", "cfd",
                           "pathfinder", "gaussian"};

    TextTable table(
        "Ablation: slowdown when disabling one optimization "
        "(total cycles relative to the full configuration, M-128)");
    table.header({"benchmark", "-tiling", "-pipelining", "-vector",
                  "-forward", "-prefetch", "-iterative", "+unroll",
                  "+timemux"});

    // Grid: kernel × {full, 8 one-factor variants} — 9 cells per row,
    // every cell its own sharded system.
    const std::function<void(core::MesaParams &)> tweaks[] = {
        [](core::MesaParams &) {},
        [](core::MesaParams &p) { p.enable_tiling = false; },
        [](core::MesaParams &p) { p.enable_pipelining = false; },
        [](core::MesaParams &p) { p.enable_vectorization = false; },
        [](core::MesaParams &p) { p.enable_forwarding = false; },
        [](core::MesaParams &p) { p.enable_prefetch = false; },
        [](core::MesaParams &p) { p.iterative_optimization = false; },
        [](core::MesaParams &p) { p.enable_unrolling = true; },
        [](core::MesaParams &p) {
            p.enable_time_multiplexing = true;
            p.accel = accel::AccelParams::m64();
        },
    };
    const size_t variants = std::size(tweaks);

    const auto cells = shardedRows<uint64_t>(
        std::size(names) * variants, jobs, [&](size_t i) -> uint64_t {
            const auto kernel = workloads::kernelByName(
                names[i / variants], {8192});
            return totalCycles(kernel, tweaks[i % variants]);
        });

    for (size_t k = 0; k < std::size(names); ++k) {
        const uint64_t full = cells[k * variants];
        std::vector<std::string> row{names[k]};
        for (size_t v = 1; v < variants; ++v)
            row.push_back(TextTable::num(
                double(cells[k * variants + v]) / double(full)));
        table.row(row);
    }
    table.print(std::cout);

    std::cout << "\n>1.00 = slower without the optimization (its "
                 "contribution); the extension columns show total "
                 "cycles with the extension enabled (time-multiplex "
                 "runs on the smaller M-64).\n";
    return 0;
}
