/**
 * @file
 * Parallel-engine performance gate. Times the fault campaign and the
 * benchmark suite harness serially (--jobs 1) and sharded (--jobs N),
 * verifies the two campaign runs produce byte-identical JSON (the
 * determinism guarantee), and emits BENCH_parallel.json with wall
 * seconds, speedup, and the host's hardware concurrency.
 *
 *   ./build/bench/bench_perf --jobs 4 --min-speedup 1.5 --json
 *
 * --min-speedup applies to the campaign speedup and makes the exit
 * status a CI gate; without it the run is report-only (a single-core
 * host cannot demonstrate speedup, so the gate is opt-in).
 *
 * Every run also appends one record (timestamp, git revision, host,
 * hardware concurrency, and the timing metrics) to the perf history
 * at BENCH_history.jsonl, so speedup is tracked across commits and
 * machines instead of overwritten per run; --no-history skips it.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "fault/campaign.hh"
#include "prof/history.hh"
#include "util/json.hh"
#include "util/logging.hh"

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

namespace
{

void
usage()
{
    std::cout <<
        "bench_perf — deterministic parallel engine benchmark\n"
        "  --jobs <n>         parallel worker count (default =\n"
        "                     hardware concurrency)\n"
        "  --injections <n>   campaign injections per kernel\n"
        "                     (default 16)\n"
        "  --scale <n>        campaign workload scale (default 128)\n"
        "  --min-speedup <x>  exit 1 unless campaign speedup >= x\n"
        "  --out <file>       JSON report path (default\n"
        "                     BENCH_parallel.json)\n"
        "  --history <file>   perf-history JSONL path (default\n"
        "                     BENCH_history.jsonl)\n"
        "  --no-history       skip the history append\n"
        "  --json             also print the report to stdout\n";
}

double
seconds(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

std::string
campaignJson(const fault::CampaignResult &result)
{
    std::ostringstream os;
    fault::writeCampaignJson(result, os);
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = defaultJobs();
    int injections = 16;
    uint64_t scale = 128;
    double min_speedup = 0.0;
    std::string out_path = "BENCH_parallel.json";
    std::string history_path = "BENCH_history.jsonl";
    bool no_history = false;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                exit(1);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            jobs = resolveJobs(int(std::strtol(next(), nullptr, 10)));
        } else if (arg == "--injections") {
            injections = int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--scale") {
            scale = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--min-speedup") {
            min_speedup = std::strtod(next(), nullptr);
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--history") {
            history_path = next();
        } else if (arg == "--no-history") {
            no_history = true;
        } else if (arg == "--json") {
            json = true;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    // --- Fault campaign: jobs=1 vs jobs=N, same seed. ---
    fault::CampaignParams cp;
    cp.seed = 7;
    cp.injections_per_kernel = injections;
    cp.scale = workloads::SuiteScale{scale};

    fault::CampaignResult serial_result, parallel_result;
    cp.jobs = 1;
    const double campaign_serial_s =
        seconds([&] { serial_result = fault::runCampaign(cp); });
    cp.jobs = jobs;
    const double campaign_parallel_s =
        seconds([&] { parallel_result = fault::runCampaign(cp); });
    const double campaign_speedup =
        campaign_parallel_s > 0
            ? campaign_serial_s / campaign_parallel_s
            : 0.0;
    const bool deterministic =
        campaignJson(serial_result) == campaignJson(parallel_result);

    // --- Suite harness: every kernel simulated end to end. ---
    const auto suite = workloads::rodiniaSuite({1024});
    auto sweep = [&](int run_jobs) {
        return shardedRows<uint64_t>(
            suite.size(), run_jobs, [&](size_t i) -> uint64_t {
                core::MesaParams params;
                return runMesa(suite[i], params).result.total_cycles;
            });
    };
    std::vector<uint64_t> suite_serial, suite_parallel;
    const double suite_serial_s =
        seconds([&] { suite_serial = sweep(1); });
    const double suite_parallel_s =
        seconds([&] { suite_parallel = sweep(jobs); });
    const double suite_speedup =
        suite_parallel_s > 0 ? suite_serial_s / suite_parallel_s : 0.0;
    const bool suite_deterministic = suite_serial == suite_parallel;

    // One environment capture feeds both the report's provenance
    // block and the history append below.
    prof::HistoryRecord rec = prof::makeHistoryRecord("bench_perf");
    rec.metrics = {
        {"jobs", double(jobs)},
        {"campaign_serial_seconds", campaign_serial_s},
        {"campaign_parallel_seconds", campaign_parallel_s},
        {"campaign_speedup", campaign_speedup},
        {"suite_serial_seconds", suite_serial_s},
        {"suite_parallel_seconds", suite_parallel_s},
        {"suite_speedup", suite_speedup},
    };

    JsonWriter w;
    w.beginObject()
        .field("jobs", jobs)
        .field("hardware_concurrency",
               int(std::thread::hardware_concurrency()))
        .field("timestamp", rec.timestamp)
        .field("git_rev", rec.git_rev)
        .field("host", rec.host)
        .field("os", rec.os)
        .field("machine", rec.machine)
        .field("campaign_injections_per_kernel", injections)
        .field("campaign_serial_seconds", campaign_serial_s)
        .field("campaign_parallel_seconds", campaign_parallel_s)
        .field("campaign_speedup", campaign_speedup)
        .field("campaign_deterministic", deterministic)
        .field("suite_serial_seconds", suite_serial_s)
        .field("suite_parallel_seconds", suite_parallel_s)
        .field("suite_speedup", suite_speedup)
        .field("suite_deterministic", suite_deterministic)
        .field("min_speedup", min_speedup)
        .end();

    std::ofstream f(out_path);
    if (!f)
        fatal("cannot open report file ", out_path);
    f << w.str() << "\n";

    if (!no_history && !prof::appendHistory(history_path, rec))
        logWarn("bench", "cannot append history to ", history_path);

    if (json)
        std::cout << w.str() << "\n";
    else
        std::cout << "campaign: " << campaign_serial_s << "s serial, "
                  << campaign_parallel_s << "s with " << jobs
                  << " jobs (" << campaign_speedup << "x, "
                  << (deterministic ? "byte-identical"
                                    : "NON-DETERMINISTIC")
                  << ")\n"
                  << "suite   : " << suite_serial_s << "s serial, "
                  << suite_parallel_s << "s with " << jobs << " jobs ("
                  << suite_speedup << "x, "
                  << (suite_deterministic ? "identical"
                                          : "NON-DETERMINISTIC")
                  << ")\n"
                  << "report  : " << out_path << "\n";

    if (!deterministic || !suite_deterministic) {
        std::cerr << "FAIL: parallel run diverged from serial\n";
        return 1;
    }
    if (min_speedup > 0 && campaign_speedup < min_speedup) {
        std::cerr << "FAIL: campaign speedup " << campaign_speedup
                  << "x below required " << min_speedup << "x\n";
        return 1;
    }
    return 0;
}
