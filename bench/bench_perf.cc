/**
 * @file
 * Simulator performance gate. Times the fault campaign and the
 * benchmark suite harness serially (--jobs 1) and sharded (--jobs N),
 * verifies the two campaign runs produce byte-identical JSON (the
 * determinism guarantee), measures raw emulator throughput with the
 * decoded-basic-block cache on and off, measures cold-vs-warm
 * translation wall time against the persistent on-disk store, and
 * emits BENCH_parallel.json with wall seconds, speedups, and the
 * host's hardware concurrency.
 *
 *   ./build/bench/bench_perf --jobs 4 --min-speedup 1.5 --json
 *
 * --min-speedup applies to the campaign speedup and makes the exit
 * status a CI gate; without it the run is report-only (a single-core
 * host cannot demonstrate speedup, so the gate is opt-in).
 *
 * Every run also appends one record (timestamp, git revision, host,
 * hardware concurrency, and the timing metrics) to the perf history
 * at BENCH_history.jsonl, so speedup is tracked across commits and
 * machines instead of overwritten per run; --no-history skips it.
 */

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "fault/campaign.hh"
#include "prof/history.hh"
#include "riscv/emulator.hh"
#include "util/json.hh"
#include "util/logging.hh"

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

namespace
{

void
usage()
{
    std::cout <<
        "bench_perf — deterministic parallel engine benchmark\n"
        "  --jobs <n>         parallel worker count (default =\n"
        "                     hardware concurrency)\n"
        "  --injections <n>   campaign injections per kernel\n"
        "                     (default 16)\n"
        "  --scale <n>        campaign workload scale (default 128)\n"
        "  --min-speedup <x>  exit 1 unless campaign speedup >= x\n"
        "  --min-warm-speedup <x>  exit 1 unless the warm-start\n"
        "                     (disk-cached) translation beats cold\n"
        "                     translation by >= x\n"
        "  --cache-dir <dir>  persistent translation cache for the\n"
        "                     campaign/suite sections (bit-identical\n"
        "                     results with or without it)\n"
        "  --out <file>       JSON report path (default\n"
        "                     BENCH_parallel.json)\n"
        "  --history <file>   perf-history JSONL path (default\n"
        "                     BENCH_history.jsonl)\n"
        "  --no-history       skip the history append\n"
        "  --json             also print the report to stdout\n";
}

double
seconds(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

std::string
campaignJson(const fault::CampaignResult &result)
{
    std::ostringstream os;
    fault::writeCampaignJson(result, os);
    return os.str();
}

/**
 * Run one kernel start-to-halt on the functional emulator and report
 * wall seconds plus retired instructions — the single-simulation
 * datapoint behind the decoded-basic-block cache.
 */
double
emulatorRun(const workloads::Kernel &kernel, bool decode_cache,
            uint64_t &instret)
{
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    riscv::Emulator emu(memory);
    emu.setDecodeCache(decode_cache);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    const double s = seconds([&] { emu.run(500'000'000); });
    instret = emu.instret();
    return s;
}

/**
 * One kernel held at its loop entry with a live controller: the
 * reusable fixture for the cold-vs-warm translation measurement. All
 * setup cost (memory image, emulator warm-up, controller build) is
 * paid here, outside the timed section.
 */
struct TranslationContext
{
    workloads::Kernel kernel;
    mem::MainMemory memory;
    std::unique_ptr<core::MesaController> mesa;
    riscv::ArchState loop_state;
    std::vector<riscv::Instruction> body;
};

std::vector<std::unique_ptr<TranslationContext>>
makeTranslationContexts(const std::vector<workloads::Kernel> &suite)
{
    std::vector<std::unique_ptr<TranslationContext>> out;
    for (const auto &kernel : suite) {
        auto ctx = std::make_unique<TranslationContext>();
        ctx->kernel = kernel;
        ctx->kernel.init_data(ctx->memory);
        cpu::loadProgram(ctx->memory, ctx->kernel.program);

        riscv::Emulator emu(ctx->memory);
        emu.reset(ctx->kernel.program.base_pc);
        ctx->kernel.fullRange()(emu.state());
        uint64_t steps = 0;
        while (!emu.halted() &&
               emu.state().pc != ctx->kernel.loop_start &&
               steps++ < 1'000'000)
            emu.step();
        ctx->loop_state = emu.state();
        ctx->body = ctx->kernel.loopBody();

        core::MesaParams params;
        ctx->mesa =
            std::make_unique<core::MesaController>(params, ctx->memory);
        out.push_back(std::move(ctx));
    }
    return out;
}

/**
 * Translate one context's hot loop through the translation-only
 * entry (no fabric configure/run). translateOnly never consults the
 * per-controller ConfigCache, so the only reuse path is the
 * persistent on-disk store — exactly the cold-vs-warm axis being
 * measured.
 */
void
translateOnce(TranslationContext &ctx)
{
    ctx.mesa->translateOnly(ctx.body, ctx.kernel.parallel);
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = defaultJobs();
    int injections = 16;
    uint64_t scale = 128;
    double min_speedup = 0.0;
    double min_warm_speedup = 0.0;
    std::string out_path = "BENCH_parallel.json";
    std::string history_path = "BENCH_history.jsonl";
    bool no_history = false;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                exit(1);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            jobs = resolveJobs(int(std::strtol(next(), nullptr, 10)));
        } else if (arg == "--injections") {
            injections = int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--scale") {
            scale = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--min-speedup") {
            min_speedup = std::strtod(next(), nullptr);
        } else if (arg == "--min-warm-speedup") {
            min_warm_speedup = std::strtod(next(), nullptr);
        } else if (arg == "--cache-dir") {
            core::TranslationStore::global().setDirectory(next());
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--history") {
            history_path = next();
        } else if (arg == "--no-history") {
            no_history = true;
        } else if (arg == "--json") {
            json = true;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    // --- Fault campaign: jobs=1 vs jobs=N, same seed. ---
    fault::CampaignParams cp;
    cp.seed = 7;
    cp.injections_per_kernel = injections;
    cp.scale = workloads::SuiteScale{scale};

    fault::CampaignResult serial_result, parallel_result;
    cp.jobs = 1;
    const double campaign_serial_s =
        seconds([&] { serial_result = fault::runCampaign(cp); });
    cp.jobs = jobs;
    const double campaign_parallel_s =
        seconds([&] { parallel_result = fault::runCampaign(cp); });
    const double campaign_speedup =
        campaign_parallel_s > 0
            ? campaign_serial_s / campaign_parallel_s
            : 0.0;
    const bool deterministic =
        campaignJson(serial_result) == campaignJson(parallel_result);

    // --- Suite harness: every kernel simulated end to end. ---
    const auto suite = workloads::rodiniaSuite({1024});
    auto sweep = [&](int run_jobs) {
        return shardedRows<uint64_t>(
            suite.size(), run_jobs, [&](size_t i) -> uint64_t {
                core::MesaParams params;
                return runMesa(suite[i], params).result.total_cycles;
            });
    };
    std::vector<uint64_t> suite_serial, suite_parallel;
    const double suite_serial_s =
        seconds([&] { suite_serial = sweep(1); });
    const double suite_parallel_s =
        seconds([&] { suite_parallel = sweep(jobs); });
    const double suite_speedup =
        suite_parallel_s > 0 ? suite_serial_s / suite_parallel_s : 0.0;
    const bool suite_deterministic = suite_serial == suite_parallel;

    // --- Emulator throughput: decoded-block cache on vs off. ---
    // Same kernel, same inputs; the cache is pure memoization, so
    // retired-instruction counts must match exactly.
    const auto emu_kernel = workloads::makeNn(262144);
    uint64_t emu_instret_cached = 0, emu_instret_uncached = 0;
    const double emu_cached_s =
        emulatorRun(emu_kernel, true, emu_instret_cached);
    const double emu_uncached_s =
        emulatorRun(emu_kernel, false, emu_instret_uncached);
    const bool emu_deterministic =
        emu_instret_cached == emu_instret_uncached;
    const double emu_mips_cached =
        emu_cached_s > 0 ? double(emu_instret_cached) / emu_cached_s / 1e6
                         : 0.0;
    const double emu_mips_uncached =
        emu_uncached_s > 0
            ? double(emu_instret_uncached) / emu_uncached_s / 1e6
            : 0.0;
    const double emu_decode_speedup =
        emu_cached_s > 0 ? emu_uncached_s / emu_cached_s : 0.0;

    // --- Translation: cold (full encode+map+config every time) vs
    // warm (served from a freshly populated on-disk store). Runs
    // last so it can commandeer the process-global store; the
    // caller's --cache-dir choice is restored afterwards. ---
    auto &tstore = core::TranslationStore::global();
    const std::string prev_cache_dir = tstore.directory();
    const auto contexts =
        makeTranslationContexts(workloads::rodiniaSuite({64}));
    const int trans_reps = 20;

    tstore.setDirectory(""); // cold: no persistence at all
    const double translation_cold_s = seconds([&] {
        for (int r = 0; r < trans_reps; ++r)
            for (const auto &ctx : contexts)
                translateOnce(*ctx);
    });

    const auto warm_dir =
        std::filesystem::temp_directory_path() /
        ("mesa_bench_perf_cache_" + std::to_string(::getpid()));
    tstore.setDirectory(warm_dir.string());
    for (const auto &ctx : contexts) // populate pass (stores)
        translateOnce(*ctx);
    for (const auto &ctx : contexts) // prime: first probe pays the
        translateOnce(*ctx);         // one-time disk parse per region
    const double translation_warm_s = seconds([&] {
        for (int r = 0; r < trans_reps; ++r)
            for (const auto &ctx : contexts)
                translateOnce(*ctx);
    });
    tstore.setDirectory(prev_cache_dir);
    std::error_code cleanup_ec;
    std::filesystem::remove_all(warm_dir, cleanup_ec);

    const double warm_speedup =
        translation_warm_s > 0 ? translation_cold_s / translation_warm_s
                               : 0.0;

    // One environment capture feeds both the report's provenance
    // block and the history append below.
    prof::HistoryRecord rec = prof::makeHistoryRecord("bench_perf");
    rec.metrics = {
        {"jobs", double(jobs)},
        {"campaign_serial_seconds", campaign_serial_s},
        {"campaign_parallel_seconds", campaign_parallel_s},
        {"campaign_speedup", campaign_speedup},
        {"suite_serial_seconds", suite_serial_s},
        {"suite_parallel_seconds", suite_parallel_s},
        {"suite_speedup", suite_speedup},
        {"emu_mips_cached", emu_mips_cached},
        {"emu_mips_uncached", emu_mips_uncached},
        {"emu_decode_speedup", emu_decode_speedup},
        {"translation_cold_seconds", translation_cold_s},
        {"translation_warm_seconds", translation_warm_s},
        {"translation_warm_speedup", warm_speedup},
    };

    JsonWriter w;
    w.beginObject()
        .field("jobs", jobs)
        .field("hardware_concurrency",
               int(std::thread::hardware_concurrency()))
        .field("timestamp", rec.timestamp)
        .field("git_rev", rec.git_rev)
        .field("host", rec.host)
        .field("os", rec.os)
        .field("machine", rec.machine)
        .field("campaign_injections_per_kernel", injections)
        .field("campaign_serial_seconds", campaign_serial_s)
        .field("campaign_parallel_seconds", campaign_parallel_s)
        .field("campaign_speedup", campaign_speedup)
        .field("campaign_deterministic", deterministic)
        .field("suite_serial_seconds", suite_serial_s)
        .field("suite_parallel_seconds", suite_parallel_s)
        .field("suite_speedup", suite_speedup)
        .field("suite_deterministic", suite_deterministic)
        .field("emu_mips_cached", emu_mips_cached)
        .field("emu_mips_uncached", emu_mips_uncached)
        .field("emu_decode_speedup", emu_decode_speedup)
        .field("emu_deterministic", emu_deterministic)
        .field("translation_cold_seconds", translation_cold_s)
        .field("translation_warm_seconds", translation_warm_s)
        .field("translation_warm_speedup", warm_speedup)
        .field("min_speedup", min_speedup)
        .field("min_warm_speedup", min_warm_speedup)
        .end();

    std::ofstream f(out_path);
    if (!f)
        fatal("cannot open report file ", out_path);
    f << w.str() << "\n";

    if (!no_history && !prof::appendHistory(history_path, rec))
        logWarn("bench", "cannot append history to ", history_path);

    if (json)
        std::cout << w.str() << "\n";
    else
        std::cout << "campaign: " << campaign_serial_s << "s serial, "
                  << campaign_parallel_s << "s with " << jobs
                  << " jobs (" << campaign_speedup << "x, "
                  << (deterministic ? "byte-identical"
                                    : "NON-DETERMINISTIC")
                  << ")\n"
                  << "suite   : " << suite_serial_s << "s serial, "
                  << suite_parallel_s << "s with " << jobs << " jobs ("
                  << suite_speedup << "x, "
                  << (suite_deterministic ? "identical"
                                          : "NON-DETERMINISTIC")
                  << ")\n"
                  << "emulate : " << emu_mips_cached
                  << " MIPS with decode cache, " << emu_mips_uncached
                  << " MIPS without (" << emu_decode_speedup << "x, "
                  << (emu_deterministic ? "identical"
                                        : "NON-DETERMINISTIC")
                  << ")\n"
                  << "translate: " << translation_cold_s
                  << "s cold, " << translation_warm_s
                  << "s warm from disk (" << warm_speedup << "x)\n"
                  << "report  : " << out_path << "\n";

    if (!deterministic || !suite_deterministic || !emu_deterministic) {
        std::cerr << "FAIL: parallel run diverged from serial\n";
        return 1;
    }
    if (min_speedup > 0 && campaign_speedup < min_speedup) {
        std::cerr << "FAIL: campaign speedup " << campaign_speedup
                  << "x below required " << min_speedup << "x\n";
        return 1;
    }
    if (min_warm_speedup > 0 && warm_speedup < min_warm_speedup) {
        std::cerr << "FAIL: warm translation speedup " << warm_speedup
                  << "x below required " << min_warm_speedup << "x\n";
        return 1;
    }
    return 0;
}
