/**
 * @file
 * Multi-tenant scheduling benchmark: N CPU threads each offload a
 * chunk of one kernel's iteration space to a shared accelerator, and
 * the spatially partitioned schedule is compared against serializing
 * the same tenants through the full array one at a time (the
 * single-tenant baseline every prior bench models).
 *
 * Tiling is disabled on BOTH sides: with it on, the serialized
 * full-array run tiles each tenant ~ways times wider, which cancels
 * the concurrency advantage and measures the tiler, not the
 * scheduler. Partitioning wins exactly when tenants are small-region
 * (they cannot use the whole array), which is the regime this bench
 * isolates.
 *
 *   ./build/bench/bench_multitenant --tenants 4 --policy rr
 *   ./build/bench/bench_multitenant --smoke      # CI gate: >= 1.2x
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "sched/multicore.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/trace.hh"
#include "workloads/kernel.hh"

using namespace mesa;

namespace
{

void
usage()
{
    std::cout <<
        "bench_multitenant — shared-accelerator scheduling\n"
        "  --kernel <name>     suite kernel (default nn)\n"
        "  --tenants <n>       offloading CPU threads (default 4)\n"
        "  --ways <n>          spatial partitions (default = tenants)\n"
        "  --policy <p>        round-robin | priority |\n"
        "                      shortest-remaining (default round-robin)\n"
        "  --epoch <n>         preemption slice iterations (default 256)\n"
        "  --scale <n>         total iterations (default 8192)\n"
        "  --seed <n>          seeded per-tenant priorities\n"
        "                      (default 0 = all equal)\n"
        "  --jobs <n>          worker threads: the serialized\n"
        "                      baseline and the partitioned run are\n"
        "                      independent simulations and run\n"
        "                      concurrently when n > 1 (default =\n"
        "                      hardware concurrency; forced to 1 when\n"
        "                      tracing)\n"
        "  --shadow-config     single-cycle context switches\n"
        "  --smoke             assert >= 1.2x over serialized; exit 1\n"
        "                      otherwise\n"
        "  --json              machine-readable output\n"
        "  --trace-out <file>  Chrome trace of the partitioned run\n"
        "  --stats-json <file> scheduler stats registry as JSON\n";
}

sched::SharedRunResult
run(const sched::SchedParams &base, const workloads::Kernel &kernel,
    int tenants, int ways, uint64_t epoch,
    const std::vector<int> &priorities)
{
    sched::SharedRunParams params;
    params.sched = base;
    params.sched.spatial_ways = ways;
    params.sched.epoch_iterations = epoch;
    params.priorities = priorities;
    mem::MainMemory memory;
    return sched::runShared(params, memory, kernel, tenants);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string kernel_name = "nn";
    std::string trace_out;
    std::string stats_json;
    int tenants = 4;
    int ways = 0;
    uint64_t epoch = 256;
    uint64_t scale = 8192;
    uint64_t seed = 0;
    int jobs = defaultJobs();
    bool smoke = false;
    bool json = false;
    sched::SchedParams base;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                exit(1);
            }
            return argv[++i];
        };
        if (arg == "--kernel") {
            kernel_name = next();
        } else if (arg == "--tenants") {
            tenants = int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--ways") {
            ways = int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--policy") {
            const std::string name = next();
            auto p = sched::policyByName(name);
            if (!p) {
                std::cerr << "unknown policy " << name << "\n";
                return 1;
            }
            base.policy = *p;
        } else if (arg == "--epoch") {
            epoch = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--scale") {
            scale = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--jobs") {
            jobs = resolveJobs(int(std::strtol(next(), nullptr, 10)));
        } else if (arg == "--shadow-config") {
            base.shadow_config = true;
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--stats-json") {
            stats_json = next();
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }
    if (tenants < 1)
        tenants = 1;

    const auto kernel =
        workloads::kernelByName(kernel_name, {scale});

    base.accel = accel::AccelParams::m128();
    base.enable_tiling = false; // isolate scheduling (file comment)
    if (ways <= 0)
        ways = std::min(tenants,
                        sched::maxWays(base.accel,
                                       kernel.loopBody().size()));

    // Seeded priorities: same seed, same tenant ordering pressure in
    // both the serialized baseline and the partitioned run. Zero (the
    // default) keeps every tenant equal.
    std::vector<int> priorities;
    if (seed != 0) {
        SplitMix64 rng(seed);
        for (int t = 0; t < tenants; ++t)
            priorities.push_back(int(rng.below(uint64_t(tenants))));
    }

    // Serialized baseline (one way, no preemption — each tenant runs
    // to completion on the full array before the next configures) and
    // the partitioned + time-multiplexed run are independent
    // simulations: with --jobs > 1 and no tracing they execute
    // concurrently, each on its own memory/scheduler state.
    sched::SharedRunResult serial, part;
    if (trace_out.empty()) {
        parallelForOrdered(2, std::min(jobs, 2), [&](size_t i) {
            if (i == 0)
                serial = run(base, kernel, tenants, 1, 0, priorities);
            else
                part = run(base, kernel, tenants, ways, epoch,
                           priorities);
        });
    } else {
        // Traced run: trace events carry no run identity, so both
        // runs stay serial and only the partitioned one records.
        serial = run(base, kernel, tenants, 1, 0, priorities);
        Tracer::global().clear();
        Tracer::global().enable();
        part = run(base, kernel, tenants, ways, epoch, priorities);
        Tracer &tracer = Tracer::global();
        tracer.enable(false);
        std::ofstream f(trace_out);
        if (!f)
            fatal("cannot open trace output file ", trace_out);
        tracer.exportJson(f);
    }
    if (!stats_json.empty()) {
        StatsRegistry stats;
        part.sched.registerInto(stats);
        JsonWriter w;
        stats.toJson(w);
        std::ofstream f(stats_json);
        if (!f)
            fatal("cannot open stats output file ", stats_json);
        f << w.str() << "\n";
    }

    const double ratio =
        part.makespan_cycles
            ? double(serial.makespan_cycles) /
                  double(part.makespan_cycles)
            : 0.0;

    if (json) {
        JsonWriter w;
        w.beginObject()
            .field("kernel", kernel.name)
            .field("tenants", tenants)
            .field("ways", part.sched.ways)
            .field("policy", sched::policyName(base.policy))
            .field("epoch_iterations", epoch)
            .field("serialized_cycles", serial.makespan_cycles)
            .field("partitioned_cycles", part.makespan_cycles)
            .field("throughput_ratio", ratio)
            .field("occupancy", part.sched.occupancy)
            .field("fairness_jain", part.sched.fairnessJain())
            .field("switches", part.sched.total_switches)
            .field("switch_cycles", part.sched.total_switch_cycles)
            .field("all_completed", part.all_completed)
            .end();
        std::cout << w.str() << "\n";
    } else {
        std::cout << "kernel " << kernel.name << ": " << tenants
                  << " tenants, " << part.sched.ways << " ways, "
                  << sched::policyName(base.policy) << ", epoch "
                  << epoch << " (tiling off on both sides)\n\n";

        TextTable table("Per-tenant schedule (partitioned run)");
        table.header({"tenant", "iters", "wait", "run", "switches",
                      "turnaround"});
        for (const auto &t : part.sched.tenants) {
            table.row({std::to_string(t.tenant),
                       std::to_string(t.iterations),
                       std::to_string(t.wait_cycles),
                       std::to_string(t.run_cycles),
                       std::to_string(t.switches),
                       std::to_string(t.turnaroundCycles())});
        }
        table.print(std::cout);

        std::cout << "\nserialized  : " << serial.makespan_cycles
                  << " cycles (1 way, run-to-completion)\n"
                  << "partitioned : " << part.makespan_cycles
                  << " cycles (" << part.sched.ways << " ways, "
                  << TextTable::num(100.0 * part.sched.occupancy, 1)
                  << "% occupancy, Jain "
                  << TextTable::num(part.sched.fairnessJain())
                  << ")\n"
                  << "throughput  : " << TextTable::num(ratio)
                  << "x aggregate vs serialized\n";
        if (!part.all_completed)
            std::cout << "WARNING: not every tenant completed\n";
    }

    if (smoke) {
        const bool ok = part.all_completed && ratio >= 1.2;
        std::cout << "\nsmoke: " << (ok ? "PASS" : "FAIL") << " ("
                  << TextTable::num(ratio) << "x, need >= 1.2x)\n";
        return ok ? 0 : 1;
    }
    return 0;
}
