/**
 * @file
 * Multi-tenant scheduling benchmark: N CPU threads each offload a
 * chunk of one kernel's iteration space to a shared accelerator, and
 * the spatially partitioned schedule is compared against serializing
 * the same tenants through the full array one at a time (the
 * single-tenant baseline every prior bench models).
 *
 * Tiling is disabled on BOTH sides: with it on, the serialized
 * full-array run tiles each tenant ~ways times wider, which cancels
 * the concurrency advantage and measures the tiler, not the
 * scheduler. Partitioning wins exactly when tenants are small-region
 * (they cannot use the whole array), which is the regime this bench
 * isolates.
 *
 *   ./build/bench/bench_multitenant --tenants 4 --policy rr
 *   ./build/bench/bench_multitenant --smoke      # CI gate: >= 1.2x
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "prof/history.hh"
#include "sched/multicore.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/trace.hh"
#include "workloads/kernel.hh"

#include "common.hh"

using namespace mesa;

namespace
{

void
usage()
{
    std::cout <<
        "bench_multitenant — shared-accelerator scheduling\n"
        "  --kernel <name>     suite kernel (default nn)\n"
        "  --tenants <n>       offloading CPU threads (default 4)\n"
        "  --ways <n>          spatial partitions (default = tenants)\n"
        "  --policy <p>        round-robin | priority |\n"
        "                      shortest-remaining (default round-robin)\n"
        "  --epoch <n>         preemption slice iterations (default 256)\n"
        "  --scale <n>         total iterations (default 8192)\n"
        "  --seed <n>          seeded per-tenant priorities\n"
        "                      (default 0 = all equal)\n"
        "  --jobs <n>          worker threads: the serialized\n"
        "                      baseline and the partitioned run are\n"
        "                      independent simulations and run\n"
        "                      concurrently when n > 1 (default =\n"
        "                      hardware concurrency; forced to 1 when\n"
        "                      tracing)\n"
        "  --shadow-config     single-cycle context switches\n"
        "  --skew <s>          Zipf-skewed per-tenant loads (weight\n"
        "                      1/(t+1)^s): runs the static AND the\n"
        "                      elastic partitioned schedule (tiling on\n"
        "                      for both — the merged band must be able\n"
        "                      to spread the solo tenant) and appends\n"
        "                      the comparison to the perf history\n"
        "  --elastic           elastic repartitioning on the\n"
        "                      partitioned run (implied by --skew)\n"
        "  --history <path>    perf-history JSONL for --skew\n"
        "                      (default BENCH_history.jsonl)\n"
        "  --no-history        skip the history append\n"
        "  --smoke             assert >= 1.2x over serialized; exit 1\n"
        "                      otherwise (with --skew: assert elastic\n"
        "                      beats static on throughput AND Jain)\n"
        "  --json              machine-readable output\n"
        "  --trace-out <file>  Chrome trace of the partitioned run\n"
        "  --stats-json <file> scheduler stats registry as JSON\n";
}

sched::SharedRunResult
run(const sched::SchedParams &base, const workloads::Kernel &kernel,
    int tenants, int ways, uint64_t epoch,
    const std::vector<int> &priorities,
    const std::vector<double> &weights = {})
{
    sched::SharedRunParams params;
    params.sched = base;
    params.sched.spatial_ways = ways;
    params.sched.epoch_iterations = epoch;
    params.priorities = priorities;
    params.weights = weights;
    mem::MainMemory memory;
    return sched::runShared(params, memory, kernel, tenants);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::applyCacheDir(argc, argv);
    std::string kernel_name = "nn";
    std::string trace_out;
    std::string stats_json;
    int tenants = 4;
    int ways = 0;
    uint64_t epoch = 256;
    uint64_t scale = 8192;
    uint64_t seed = 0;
    int jobs = defaultJobs();
    bool smoke = false;
    bool json = false;
    double skew = 0.0;
    bool elastic = false;
    bool append_history = true;
    std::string history_path = "BENCH_history.jsonl";
    sched::SchedParams base;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                exit(1);
            }
            return argv[++i];
        };
        if (arg == "--kernel") {
            kernel_name = next();
        } else if (arg == "--tenants") {
            tenants = int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--ways") {
            ways = int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--policy") {
            const std::string name = next();
            auto p = sched::policyByName(name);
            if (!p) {
                std::cerr << "unknown policy " << name << "\n";
                return 1;
            }
            base.policy = *p;
        } else if (arg == "--epoch") {
            epoch = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--scale") {
            scale = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--jobs") {
            jobs = resolveJobs(int(std::strtol(next(), nullptr, 10)));
        } else if (arg == "--shadow-config") {
            base.shadow_config = true;
        } else if (arg == "--skew") {
            skew = std::strtod(next(), nullptr);
        } else if (arg == "--elastic") {
            elastic = true;
        } else if (arg == "--history") {
            history_path = next();
        } else if (arg == "--no-history") {
            append_history = false;
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--stats-json") {
            stats_json = next();
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }
    if (tenants < 1)
        tenants = 1;

    const auto kernel =
        workloads::kernelByName(kernel_name, {scale});

    base.accel = accel::AccelParams::m128();
    base.enable_tiling = false; // isolate scheduling (file comment)
    if (ways <= 0)
        ways = std::min(tenants,
                        sched::maxWays(base.accel,
                                       kernel.loopBody().size()));

    // Seeded priorities: same seed, same tenant ordering pressure in
    // both the serialized baseline and the partitioned run. Zero (the
    // default) keeps every tenant equal.
    std::vector<int> priorities;
    if (seed != 0) {
        SplitMix64 rng(seed);
        for (int t = 0; t < tenants; ++t)
            priorities.push_back(int(rng.below(uint64_t(tenants))));
    }

    // Skewed-load cell: Zipf per-tenant weights, static vs elastic
    // partitioned schedules. Tiling is ON for all three runs here —
    // the elastic win comes from the merged band spreading the solo
    // heavy tenant, and the static run must be allowed the same
    // optimization within its band for the comparison to be fair.
    if (skew > 0.0) {
        base.enable_tiling = true;
        std::vector<double> weights;
        for (int t = 0; t < tenants; ++t)
            weights.push_back(1.0 / std::pow(double(t + 1), skew));

        sched::SchedParams elas = base;
        elas.elastic = true;

        sched::SharedRunResult serial, spart, epart;
        if (trace_out.empty()) {
            parallelForOrdered(3, std::min(jobs, 3), [&](size_t i) {
                if (i == 0)
                    serial = run(base, kernel, tenants, 1, 0,
                                 priorities, weights);
                else if (i == 1)
                    spart = run(base, kernel, tenants, ways, epoch,
                                priorities, weights);
                else
                    epart = run(elas, kernel, tenants, ways, epoch,
                                priorities, weights);
            });
        } else {
            serial =
                run(base, kernel, tenants, 1, 0, priorities, weights);
            spart = run(base, kernel, tenants, ways, epoch, priorities,
                        weights);
            Tracer::global().clear();
            Tracer::global().enable();
            epart = run(elas, kernel, tenants, ways, epoch, priorities,
                        weights);
            Tracer &tracer = Tracer::global();
            tracer.enable(false);
            std::ofstream f(trace_out);
            if (!f)
                fatal("cannot open trace output file ", trace_out);
            tracer.exportJson(f);
        }

        const double elastic_speedup =
            epart.makespan_cycles
                ? double(spart.makespan_cycles) /
                      double(epart.makespan_cycles)
                : 0.0;
        const double jain_static = spart.sched.fairnessJain();
        const double jain_elastic = epart.sched.fairnessJain();

        if (json) {
            JsonWriter w;
            w.beginObject()
                .field("kernel", kernel.name)
                .field("tenants", tenants)
                .field("ways", epart.sched.ways)
                .field("skew", skew)
                .field("serialized_cycles", serial.makespan_cycles)
                .field("static_cycles", spart.makespan_cycles)
                .field("elastic_cycles", epart.makespan_cycles)
                .field("elastic_speedup", elastic_speedup)
                .field("static_jain", jain_static)
                .field("elastic_jain", jain_elastic)
                .field("migrations", epart.sched.migrations)
                .field("migration_warm", epart.sched.migration_warm)
                .field("migration_translate_cycles",
                       epart.sched.migration_translate_cycles)
                .field("migration_stream_cycles",
                       epart.sched.migration_stream_cycles)
                .field("all_completed", spart.all_completed &&
                                            epart.all_completed)
                .end();
            std::cout << w.str() << "\n";
        } else {
            std::cout << "kernel " << kernel.name << ": " << tenants
                      << " tenants, " << epart.sched.ways
                      << " ways, skew " << skew
                      << " (Zipf weights, tiling on)\n\n"
                      << "serialized : " << serial.makespan_cycles
                      << " cycles\n"
                      << "static     : " << spart.makespan_cycles
                      << " cycles, Jain "
                      << TextTable::num(jain_static) << "\n"
                      << "elastic    : " << epart.makespan_cycles
                      << " cycles, Jain "
                      << TextTable::num(jain_elastic) << " ("
                      << epart.sched.migrations << " migrations, "
                      << epart.sched.migration_warm << " warm, "
                      << epart.sched.migration_translate_cycles
                      << " translate + "
                      << epart.sched.migration_stream_cycles
                      << " stream cycles)\n"
                      << "elastic vs static: "
                      << TextTable::num(elastic_speedup)
                      << "x throughput\n";
            if (!spart.all_completed || !epart.all_completed)
                std::cout << "WARNING: not every tenant completed\n";
        }

        if (append_history) {
            prof::HistoryRecord rec =
                prof::makeHistoryRecord("bench_multitenant");
            rec.metrics["skew"] = skew;
            rec.metrics["tenants"] = double(tenants);
            rec.metrics["static_cycles"] =
                double(spart.makespan_cycles);
            rec.metrics["elastic_cycles"] =
                double(epart.makespan_cycles);
            rec.metrics["elastic_speedup"] = elastic_speedup;
            rec.metrics["static_jain"] = jain_static;
            rec.metrics["elastic_jain"] = jain_elastic;
            rec.metrics["migrations"] =
                double(epart.sched.migrations);
            if (!prof::appendHistory(history_path, rec))
                logWarn("sched", "cannot append history to ",
                        history_path);
        }

        if (smoke) {
            const bool ok = spart.all_completed &&
                            epart.all_completed &&
                            elastic_speedup > 1.0 &&
                            jain_elastic > jain_static;
            std::cout << "\nsmoke: " << (ok ? "PASS" : "FAIL")
                      << " (elastic "
                      << TextTable::num(elastic_speedup)
                      << "x static, Jain "
                      << TextTable::num(jain_elastic) << " vs "
                      << TextTable::num(jain_static)
                      << "; need >1x and higher Jain)\n";
            return ok ? 0 : 1;
        }
        return 0;
    }

    base.elastic = elastic;

    // Serialized baseline (one way, no preemption — each tenant runs
    // to completion on the full array before the next configures) and
    // the partitioned + time-multiplexed run are independent
    // simulations: with --jobs > 1 and no tracing they execute
    // concurrently, each on its own memory/scheduler state.
    sched::SharedRunResult serial, part;
    if (trace_out.empty()) {
        parallelForOrdered(2, std::min(jobs, 2), [&](size_t i) {
            if (i == 0)
                serial = run(base, kernel, tenants, 1, 0, priorities);
            else
                part = run(base, kernel, tenants, ways, epoch,
                           priorities);
        });
    } else {
        // Traced run: trace events carry no run identity, so both
        // runs stay serial and only the partitioned one records.
        serial = run(base, kernel, tenants, 1, 0, priorities);
        Tracer::global().clear();
        Tracer::global().enable();
        part = run(base, kernel, tenants, ways, epoch, priorities);
        Tracer &tracer = Tracer::global();
        tracer.enable(false);
        std::ofstream f(trace_out);
        if (!f)
            fatal("cannot open trace output file ", trace_out);
        tracer.exportJson(f);
    }
    if (!stats_json.empty()) {
        StatsRegistry stats;
        part.sched.registerInto(stats);
        JsonWriter w;
        stats.toJson(w);
        std::ofstream f(stats_json);
        if (!f)
            fatal("cannot open stats output file ", stats_json);
        f << w.str() << "\n";
    }

    const double ratio =
        part.makespan_cycles
            ? double(serial.makespan_cycles) /
                  double(part.makespan_cycles)
            : 0.0;

    if (json) {
        JsonWriter w;
        w.beginObject()
            .field("kernel", kernel.name)
            .field("tenants", tenants)
            .field("ways", part.sched.ways)
            .field("policy", sched::policyName(base.policy))
            .field("epoch_iterations", epoch)
            .field("serialized_cycles", serial.makespan_cycles)
            .field("partitioned_cycles", part.makespan_cycles)
            .field("throughput_ratio", ratio)
            .field("occupancy", part.sched.occupancy)
            .field("fairness_jain", part.sched.fairnessJain())
            .field("switches", part.sched.total_switches)
            .field("switch_cycles", part.sched.total_switch_cycles)
            .field("all_completed", part.all_completed)
            .end();
        std::cout << w.str() << "\n";
    } else {
        std::cout << "kernel " << kernel.name << ": " << tenants
                  << " tenants, " << part.sched.ways << " ways, "
                  << sched::policyName(base.policy) << ", epoch "
                  << epoch << " (tiling off on both sides)\n\n";

        TextTable table("Per-tenant schedule (partitioned run)");
        table.header({"tenant", "iters", "wait", "run", "switches",
                      "turnaround"});
        for (const auto &t : part.sched.tenants) {
            table.row({std::to_string(t.tenant),
                       std::to_string(t.iterations),
                       std::to_string(t.wait_cycles),
                       std::to_string(t.run_cycles),
                       std::to_string(t.switches),
                       std::to_string(t.turnaroundCycles())});
        }
        table.print(std::cout);

        std::cout << "\nserialized  : " << serial.makespan_cycles
                  << " cycles (1 way, run-to-completion)\n"
                  << "partitioned : " << part.makespan_cycles
                  << " cycles (" << part.sched.ways << " ways, "
                  << TextTable::num(100.0 * part.sched.occupancy, 1)
                  << "% occupancy, Jain "
                  << TextTable::num(part.sched.fairnessJain())
                  << ")\n"
                  << "throughput  : " << TextTable::num(ratio)
                  << "x aggregate vs serialized\n";
        if (!part.all_completed)
            std::cout << "WARNING: not every tenant completed\n";
    }

    if (smoke) {
        const bool ok = part.all_completed && ratio >= 1.2;
        std::cout << "\nsmoke: " << (ok ? "PASS" : "FAIL") << " ("
                  << TextTable::num(ratio) << "x, need >= 1.2x)\n";
        return ok ? 0 : 1;
    }
    return 0;
}
