/**
 * @file
 * Reproduces paper Table 2: configuration-latency comparison between
 * MESA and related approaches. MESA's measured configuration time
 * (encode + imap + bitstream) across the suite lands in the 10^3-10^4
 * cycle range — nanoseconds to a microsecond at 2 GHz — between
 * DynaSpAM's immediate hardware mapping and DORA's millisecond
 * software translation.
 */

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

int
main(int argc, char **argv)
{
    const int jobs = parseJobs(argc, argv);
    applyCacheDir(argc, argv);
    core::MesaParams params;
    params.accel = accel::AccelParams::m128();

    uint64_t min_cycles = ~uint64_t(0);
    uint64_t max_cycles = 0;
    TextTable detail("Measured MESA configuration cost per kernel "
                     "(M-128)");
    detail.header({"kernel", "encode", "imap", "bitstream", "total",
                   "ns @2GHz"});

    const auto suite = workloads::rodiniaSuite({4096});
    struct Row
    {
        bool ok = false;
        std::string name;
        uint64_t encode = 0, imap = 0, bitstream = 0, total = 0;
        double ns = 0;
    };
    const auto rows = shardedRows<Row>(
        suite.size(), jobs, [&](size_t i) -> Row {
            const auto &kernel = suite[i];
            if (!kernel.mesa_supported)
                return {};
            mem::MainMemory memory;
            kernel.init_data(memory);
            cpu::loadProgram(memory, kernel.program);
            core::MesaController mesa(params, memory);

            riscv::Emulator emu(memory);
            emu.reset(kernel.program.base_pc);
            kernel.fullRange()(emu.state());
            uint64_t guard = 0;
            while (!emu.halted() &&
                   emu.state().pc != kernel.loop_start &&
                   guard++ < 100000)
                emu.step();

            auto os = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                                       kernel.parallel, 1);
            if (!os)
                return {};
            Row r;
            r.ok = true;
            r.name = kernel.name;
            r.encode = os->encode_cycles;
            r.imap = os->mapping_cycles;
            r.bitstream = os->config_cycles;
            r.total = os->totalConfigCycles();
            r.ns = mesa.cyclesToNs(r.total);
            return r;
        });

    for (const Row &r : rows) {
        if (!r.ok)
            continue;
        min_cycles = std::min(min_cycles, r.total);
        max_cycles = std::max(max_cycles, r.total);
        detail.row({r.name, std::to_string(r.encode),
                    std::to_string(r.imap),
                    std::to_string(r.bitstream),
                    std::to_string(r.total), TextTable::num(r.ns, 1)});
    }
    detail.print(std::cout);

    std::cout << "\n";
    TextTable table("Table 2: configuration latency by approach");
    table.header({"work", "config latency", "targets",
                  "optimizations"});
    table.row({"TRIPS", "AOT (compiler)", "2D spatial",
               "H-Block (EDGE)"});
    table.row({"CCA", "-", "1D FF", "N/A"});
    table.row({"DynaSpAM", "JIT (ns)", "1D FF", "out-of-order"});
    table.row({"DORA", "JIT (ms)", "2D spatial",
               "vect., unroll, deepen"});
    table.row({"MESA (this repo)",
               "JIT (" + TextTable::num(min_cycles / 2.0, 0) + "-" +
                   TextTable::num(max_cycles / 2.0, 0) + " ns)",
               "2D spatial", "dynamic, tile, pipeline"});
    table.print(std::cout);

    std::cout << "\nmeasured config cycles: " << min_cycles << " - "
              << max_cycles
              << " (paper: 10^3-10^4 cycles, ns-us range)\n";
    return 0;
}
