/**
 * @file
 * Reproduces paper Figure 2: the worked five-instruction DFG latency
 * example. Prints the per-instruction latency table (Eq. 1) for a
 * mesh placement with add/sub = 3 cycles and mul = 5 cycles, and the
 * critical path.
 */

#include "common.hh"
#include "dfg/latency.hh"
#include "riscv/assembler.hh"

using namespace mesa;
using namespace mesa::riscv::reg;

int
main()
{
    // The example's graph: i1 add, i2 mul(i1), i3 sub, i4 mul(i1,i3),
    // i5 add(i4, i2) — encoded as FP ops so add/sub=3, mul=5 under the
    // default latency table.
    riscv::Assembler as;
    as.label("loop");
    as.fadd_s(ft0, fa0, fa1); // i1
    as.fmul_s(ft1, ft0, fa2); // i2
    as.fsub_s(ft2, fa3, fa4); // i3
    as.fmul_s(ft3, ft0, ft2); // i4
    as.fadd_s(ft4, ft3, ft1); // i5
    as.addi(a0, a0, 1);
    as.blt(a0, a1, "loop");
    const auto prog = as.assemble();
    std::vector<riscv::Instruction> body = prog.decodeAll();

    auto ldfg = dfg::Ldfg::build(body);
    if (!ldfg) {
        std::cerr << "failed to build the example LDFG\n";
        return 1;
    }

    // The figure's placement on a mesh.
    dfg::Sdfg sdfg(4, 4);
    sdfg.place(0, {0, 0});
    sdfg.place(1, {0, 1});
    sdfg.place(2, {1, 0});
    sdfg.place(3, {1, 1});
    sdfg.place(4, {1, 2});
    sdfg.place(5, {2, 0});
    sdfg.place(6, {2, 1});

    ic::MeshInterconnect mesh;
    dfg::LatencyModel model(*ldfg, sdfg, mesh);
    const auto res = model.evaluate();

    TextTable table("Figure 2: worked DFG latency example "
                    "(add/sub=3, mul=5, transfer=Manhattan)");
    table.header({"instr", "op", "position", "L_i (cycles)"});
    for (size_t i = 0; i < 5; ++i) {
        const auto pos = sdfg.coordOf(int(i));
        table.row({"i" + std::to_string(i + 1),
                   riscv::opName(body[i].op),
                   "(" + std::to_string(pos.r) + "," +
                       std::to_string(pos.c) + ")",
                   TextTable::num(res.completion[i], 0)});
    }
    table.print(std::cout);

    std::cout << "\nsequence latency: " << TextTable::num(res.total, 0)
              << " cycles (paper figure: 15 with its layout)\n";
    std::cout << "critical path: ";
    for (auto id : res.critical_path)
        if (id < 5)
            std::cout << "i" << (id + 1) << " ";
    std::cout << "(paper: {i1, i4, i5})\n";
    return 0;
}
