/**
 * @file
 * R4-type fused multiply-add tests: encoding round trip with the
 * third source register, emulator semantics, and the C2 story — the
 * paper's DFG model allows at most two predecessors per node, so a
 * hot loop containing fused ops runs correctly on the CPU but is
 * never offloaded.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "riscv/assembler.hh"
#include "riscv/encoding.hh"

namespace
{

using namespace mesa;
using namespace mesa::riscv;
using namespace mesa::riscv::reg;

TEST(Fused, EncodeDecodeRoundTripWithRs3)
{
    for (Op op : {Op::FmaddS, Op::FmsubS, Op::FnmaddS, Op::FnmsubS}) {
        Instruction in;
        in.op = op;
        in.rd = 4;
        in.rs1 = 7;
        in.rs2 = 12;
        in.rs3 = 29;
        const Instruction out = decode(encode(in), 0x1000);
        EXPECT_EQ(out.op, op) << opName(op);
        EXPECT_EQ(out.rd, 4);
        EXPECT_EQ(out.rs1, 7);
        EXPECT_EQ(out.rs2, 12);
        EXPECT_EQ(out.rs3, 29);
        EXPECT_EQ(out.numSources(), 3);
        EXPECT_EQ(out.unifiedSrc(2), 32 + 29);
    }
}

TEST(Fused, EmulatorSemantics)
{
    Assembler as;
    as.fmadd_s(ft3, ft0, ft1, ft2);  //  a*b + c
    as.fmsub_s(ft4, ft0, ft1, ft2);  //  a*b - c
    as.fnmsub_s(ft5, ft0, ft1, ft2); // -a*b + c
    as.fnmadd_s(ft6, ft0, ft1, ft2); // -a*b - c
    as.ecall();

    mem::MainMemory memory;
    cpu::loadProgram(memory, as.assemble());
    Emulator emu(memory);
    emu.reset(0x1000);
    emu.setF(ft0, 3.0f);
    emu.setF(ft1, 4.0f);
    emu.setF(ft2, 5.0f);
    emu.run(100);

    EXPECT_FLOAT_EQ(emu.fval(ft3), 17.0f);
    EXPECT_FLOAT_EQ(emu.fval(ft4), 7.0f);
    EXPECT_FLOAT_EQ(emu.fval(ft5), -7.0f);
    EXPECT_FLOAT_EQ(emu.fval(ft6), -17.0f);
}

/** A kmeans-like hot loop compiled with fused multiply-adds. */
workloads::Kernel
makeFusedKernel(uint64_t n)
{
    workloads::Kernel k;
    k.name = "kmeans-fused";
    k.parallel = true;
    k.fp = true;
    k.mesa_supported = false; // three-operand nodes fail C2
    k.iterations = n;

    Assembler as(0x1000);
    as.label("loop");
    as.flw(ft0, 0, a0);
    as.fsub_s(ft0, ft0, fa0);
    as.flw(ft1, 4, a0);
    as.fsub_s(ft1, ft1, fa1);
    as.fmul_s(ft2, ft0, ft0);
    as.fmadd_s(ft2, ft1, ft1, ft2); // dist = d1*d1 + d0*d0 (fused)
    as.fsw(ft2, 0, a1);
    as.addi(a0, a0, 8);
    as.addi(a1, a1, 4);
    as.blt(a0, a2, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        uint32_t seed = 77;
        for (uint64_t i = 0; i < 2 * n; ++i) {
            seed = seed * 1664525u + 1013904223u;
            m.writeFloat(0x00100000 + uint32_t(4 * i),
                         float(seed >> 8) / float(1 << 24));
        }
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = 0x00100000 + uint32_t(8 * b);
        st.x[a1] = 0x00300000 + uint32_t(4 * b);
        st.x[a2] = 0x00100000 + uint32_t(8 * e);
        st.f[fa0] = std::bit_cast<uint32_t>(0.5f);
        st.f[fa1] = std::bit_cast<uint32_t>(0.25f);
    };
    k.program = as.assemble();
    k.loop_start = 0x1000;
    k.loop_end = k.program.labelPc("exit");
    return k;
}

TEST(Fused, LdfgRejectsThreeOperandNodes)
{
    const auto kernel = makeFusedKernel(64);
    dfg::BuildError err;
    EXPECT_FALSE(
        dfg::Ldfg::build(kernel.loopBody(), {}, 0, &err).has_value());
    EXPECT_EQ(err, dfg::BuildError::UnsupportedOp);
}

TEST(Fused, MonitorRejectsViaC2)
{
    const auto kernel = makeFusedKernel(2048);
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());

    cpu::RegionMonitor monitor{cpu::MonitorParams{}};
    std::optional<cpu::MonitorDecision> decision;
    emu.setObserver([&](const TraceEntry &te) {
        monitor.observe(te);
        if (!decision && monitor.decision())
            decision = monitor.decision();
    });
    uint64_t steps = 0;
    while (!emu.halted() && steps++ < 500000 && !decision)
        emu.step();

    ASSERT_TRUE(decision.has_value());
    EXPECT_FALSE(decision->qualified);
    EXPECT_EQ(decision->reason, cpu::RejectReason::UnsupportedInstr);
}

TEST(Fused, TransparentRunStaysOnCpuAndIsCorrect)
{
    const auto kernel = makeFusedKernel(512);
    const auto want = test::runReference(kernel);

    mem::MainMemory memory;
    kernel.init_data(memory);
    core::MesaParams params;
    core::MesaController mesa(params, memory);
    const auto res = mesa.runTransparent(
        kernel.program, kernel.fullRange(), kernel.parallel);

    EXPECT_TRUE(res.halted);
    EXPECT_TRUE(res.offloads.empty())
        << "fused-op loop must never offload";
    EXPECT_FALSE(res.rejections.empty());
    EXPECT_TRUE(test::sameMemory(memory.snapshot(), want.memory));
    EXPECT_EQ(res.final_state, want.state);
}

} // namespace
