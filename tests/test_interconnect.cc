/**
 * @file
 * Interconnect latency-model tests: mesh, hierarchical row, the
 * accelerator NoC (local links + half-ring slices), and custom
 * user-defined models (backend agnosticism, paper §3.3).
 */

#include <gtest/gtest.h>

#include "interconnect/custom.hh"
#include "interconnect/interconnect.hh"

namespace
{

using namespace mesa::ic;

TEST(Mesh, ManhattanLatency)
{
    MeshInterconnect mesh;
    EXPECT_EQ(mesh.latency({0, 0}, {0, 1}), 1u);
    EXPECT_EQ(mesh.latency({0, 0}, {1, 1}), 2u); // diagonal = 2 hops
    EXPECT_EQ(mesh.latency({2, 3}, {5, 1}), 5u);
    EXPECT_EQ(mesh.latency({4, 4}, {4, 4}), 1u); // self loopback
    EXPECT_EQ(mesh.busId({0, 0}, {7, 7}), -1);
}

TEST(HierRow, PaperFig4Example1)
{
    // Single-cycle within a row, fixed 3 cycles across rows.
    HierRowInterconnect hier(3);
    EXPECT_EQ(hier.latency({2, 0}, {2, 7}), 1u);
    EXPECT_EQ(hier.latency({2, 0}, {3, 0}), 3u);
    EXPECT_EQ(hier.latency({0, 5}, {4, 2}), 3u);
    // Cross-row transfers contend on the destination row's bus.
    EXPECT_EQ(hier.busId({0, 0}, {3, 3}), 3);
    EXPECT_EQ(hier.busId({2, 0}, {2, 5}), -1);
}

TEST(AccelNoc, LocalLinksAreCheap)
{
    AccelNocInterconnect noc(16, 8, 4);
    EXPECT_EQ(noc.latency({3, 3}, {3, 4}), 1u);
    EXPECT_EQ(noc.latency({3, 3}, {4, 3}), 1u);
    EXPECT_EQ(noc.latency({3, 3}, {4, 4}), 2u); // diagonal neighbor
    EXPECT_EQ(noc.latency({3, 3}, {3, 5}), 2u); // 2-hop forwarding
    EXPECT_EQ(noc.latency({3, 3}, {5, 4}), 3u); // 3-hop forwarding
    EXPECT_EQ(noc.busId({3, 3}, {4, 4}), -1);   // no bus for local
    EXPECT_EQ(noc.busId({3, 3}, {3, 5}), -1);
    EXPECT_EQ(noc.busId({3, 3}, {5, 4}), -1);
}

TEST(AccelNoc, NocTransfersPayInjectEject)
{
    AccelNocInterconnect noc(16, 8, 4);
    // Distance (0,0)->(0,4): 1 slice hop + inject + eject = 3.
    EXPECT_EQ(noc.latency({0, 0}, {0, 4}), 3u);
    // Vertical distance adds row hops.
    EXPECT_EQ(noc.latency({0, 0}, {5, 0}), 2u + 0u + 5u);
    EXPECT_GE(noc.latency({0, 0}, {15, 7}), 2u);
    // NoC transfers contend on the destination slice's ring stop.
    EXPECT_EQ(noc.busId({0, 0}, {5, 0}), 5 * 64 + 0);
    EXPECT_EQ(noc.busId({0, 0}, {5, 5}), 5 * 64 + 1);
}

TEST(AccelNoc, HalfRingWrapsHorizontally)
{
    AccelNocInterconnect noc(16, 8, 4);
    // dc = 7 wraps to 1 on an 8-wide ring: same slice-hop count as a
    // direct one-column NoC transfer at the same vertical distance.
    const uint32_t wrap = noc.latency({0, 0}, {5, 7});
    const uint32_t direct = noc.latency({0, 0}, {5, 1});
    EXPECT_EQ(wrap, direct);
}

TEST(AccelNoc, MonotoneInDistance)
{
    AccelNocInterconnect noc(16, 8, 4);
    uint32_t prev = 0;
    for (int r = 0; r < 16; ++r) {
        const uint32_t lat = noc.latency({0, 0}, {r, 0});
        if (r >= 2) {
            EXPECT_GE(lat, prev);
        }
        prev = lat;
    }
}

TEST(Custom, CallbackInterconnect)
{
    CustomInterconnect ic(
        "test",
        [](Coord a, Coord b) {
            return uint32_t(1 + std::abs(a.r - b.r) * 2);
        },
        [](Coord, Coord b) { return b.r; });
    EXPECT_EQ(ic.latency({0, 0}, {3, 5}), 7u);
    EXPECT_EQ(ic.busId({0, 0}, {3, 5}), 3);
    EXPECT_STREQ(ic.name(), "test");
}

TEST(Custom, ColumnBus)
{
    ColumnBusInterconnect ic(4);
    EXPECT_EQ(ic.latency({0, 2}, {9, 2}), 1u); // same column: broadcast
    EXPECT_EQ(ic.latency({0, 0}, {0, 3}), 12u);
    EXPECT_EQ(ic.busId({0, 2}, {9, 2}), 2);
    EXPECT_EQ(ic.busId({0, 0}, {0, 3}), -1);
}

} // namespace
