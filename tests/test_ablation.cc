/**
 * @file
 * Ablation tests for the design choices DESIGN.md calls out: each
 * optimization must (a) preserve golden-model equivalence and (b)
 * move performance in the documented direction on a kernel that
 * exercises it.
 */

#include <gtest/gtest.h>

#include "helpers.hh"

namespace
{

using namespace mesa;
using namespace mesa::test;
using core::MesaParams;
using workloads::Kernel;
using workloads::kernelByName;

/** Accel cycles for a kernel under the given parameter tweak. */
uint64_t
cyclesWith(const Kernel &kernel,
           const std::function<void(MesaParams &)> &tweak)
{
    MesaParams params;
    params.iterative_optimization = false;
    tweak(params);
    const OffloadRun run = runWithOffload(kernel, params);
    EXPECT_TRUE(run.stats.has_value());
    return run.stats ? run.stats->accel_cycles : 0;
}

TEST(Ablation, TilingContribution)
{
    const Kernel kernel = kernelByName("nn", {2048});
    const uint64_t with = cyclesWith(kernel, [](MesaParams &) {});
    const uint64_t without = cyclesWith(
        kernel, [](MesaParams &p) { p.enable_tiling = false; });
    EXPECT_LT(double(with), 0.8 * double(without))
        << "tiling should speed a parallel kernel substantially";
}

TEST(Ablation, PipeliningContribution)
{
    const Kernel kernel = kernelByName("cfd", {2048});
    const uint64_t with = cyclesWith(kernel, [](MesaParams &) {});
    const uint64_t without = cyclesWith(
        kernel, [](MesaParams &p) { p.enable_pipelining = false; });
    // Without iteration overlap, every iteration pays the full
    // dataflow critical path.
    EXPECT_LT(4 * with, without)
        << "pipelining should hide the iteration latency";
}

TEST(Ablation, PrefetchContribution)
{
    // lud streams a column with a 256-byte stride: every load misses
    // without prefetch, and the next-iteration prefetch converts the
    // misses to hits.
    const Kernel kernel = kernelByName("lud", {4096});
    const uint64_t with = cyclesWith(kernel, [](MesaParams &) {});
    const uint64_t without = cyclesWith(
        kernel, [](MesaParams &p) { p.enable_prefetch = false; });
    EXPECT_LE(with, without);
}

TEST(Ablation, ForwardingPreservesResults)
{
    // gaussian has a load->store pair on a[]; forwarding changes
    // timing only.
    const Kernel kernel = kernelByName("gaussian", {1024});
    MesaParams with;
    with.iterative_optimization = false;
    MesaParams without = with;
    without.enable_forwarding = false;
    const OffloadRun a = runWithOffload(kernel, with);
    const OffloadRun b = runWithOffload(kernel, without);
    ASSERT_TRUE(a.stats && b.stats);
    EXPECT_TRUE(sameMemory(a.memory, b.memory));
}

TEST(Ablation, ConservativeFirstTilingThenScaleUp)
{
    // With iterative optimization the controller starts at half the
    // tile ceiling and scales up from profiled epochs; the final
    // configuration must reach a higher tile factor than the first.
    const Kernel kernel = kernelByName("nn", {4096});
    MesaParams params;
    params.iterative_optimization = true;
    params.profile_epoch_iterations = 64;
    const OffloadRun run = runWithOffload(kernel, params);
    ASSERT_TRUE(run.stats.has_value());
    EXPECT_GT(run.stats->reconfigurations, 0)
        << "feedback should retile at least once";
    EXPECT_GT(run.stats->tile_factor, 1);
}

TEST(Ablation, WindowShapeAffectsPackingNotCorrectness)
{
    const Kernel kernel = kernelByName("kmeans", {1024});
    const GoldenResult want = runReference(kernel);
    for (auto [r, c] : {std::pair{2, 16}, {4, 8}, {4, 4}, {8, 4},
                        {16, 2}}) {
        MesaParams params;
        params.iterative_optimization = false;
        params.mapper.cand_rows = r;
        params.mapper.cand_cols = c;
        const OffloadRun run = runWithOffload(kernel, params);
        ASSERT_TRUE(run.stats.has_value()) << r << "x" << c;
        EXPECT_TRUE(sameMemory(run.memory, want.memory))
            << "window " << r << "x" << c;
    }
}

TEST(Ablation, FallbackBusLatencyMatters)
{
    // Force unmapped instructions by removing FP support from every
    // PE: kmeans' FP ops have no compatible position and revert to
    // the secondary bus. A slower bus must slow execution, never
    // change results.
    const Kernel kernel = kernelByName("kmeans", {512});
    const GoldenResult want = runReference(kernel);

    auto run_with_bus = [&](double bus_latency) {
        MesaParams params;
        params.iterative_optimization = false;
        params.accel.fp_slices = false;
        params.mapper.fallback_bus_latency = bus_latency;
        params.accel.fallback_bus_latency = bus_latency;
        params.max_unmapped_frac = 1.0; // accept partial mappings
        return runWithOffload(kernel, params);
    };
    const OffloadRun fast = run_with_bus(4.0);
    const OffloadRun slow = run_with_bus(32.0);
    ASSERT_TRUE(fast.stats && slow.stats);
    EXPECT_GT(fast.stats->unmapped + slow.stats->unmapped, 0u)
        << "expected fallback-bus traffic on a 2x4 grid";
    EXPECT_LE(fast.stats->accel_cycles, slow.stats->accel_cycles);
    EXPECT_TRUE(sameMemory(fast.memory, want.memory));
    EXPECT_TRUE(sameMemory(slow.memory, want.memory));
}

TEST(Ablation, MemoryPortScalingMonotone)
{
    const Kernel kernel = kernelByName("hotspot", {2048});
    uint64_t prev = ~uint64_t(0);
    for (unsigned ports : {2u, 4u, 8u, 16u, 64u}) {
        const uint64_t cyc = cyclesWith(kernel, [&](MesaParams &p) {
            p.accel.mem_ports = ports;
        });
        EXPECT_LE(cyc, prev) << ports << " ports";
        prev = cyc;
    }
}

TEST(Ablation, UnknownStoresDisableTiling)
{
    // bfs's visited[] store has a data-dependent address: tiling must
    // stay off even with the parallel hint.
    const Kernel kernel = kernelByName("bfs", {2048});
    MesaParams params;
    params.iterative_optimization = false;
    const OffloadRun run = runWithOffload(kernel, params);
    ASSERT_TRUE(run.stats.has_value());
    EXPECT_EQ(run.stats->tile_factor, 1)
        << "non-disambiguable stores must not tile";
}

} // namespace
