/**
 * @file
 * Configuration-layer tests: the SDFG container, ConfigBlock lowering
 * (slots, live wiring, memory annotations, tiling geometry, bitstream
 * sizing), the LRU config cache, and the iterative optimizer's
 * feedback/remap decisions.
 */

#include <gtest/gtest.h>

#include "accel/params.hh"
#include "dfg/sdfg.hh"
#include "mesa/config_builder.hh"
#include "mesa/config_cache.hh"
#include "mesa/mapper.hh"
#include "mesa/optimizer.hh"
#include "workloads/kernel.hh"

namespace
{

using namespace mesa;
using namespace mesa::core;
using namespace mesa::dfg;

// ---------------------------------------------------------------------
// Sdfg container.
// ---------------------------------------------------------------------

TEST(Sdfg, PlaceRemoveAndOccupancy)
{
    Sdfg s(4, 4);
    EXPECT_TRUE(s.place(0, {1, 1}));
    EXPECT_FALSE(s.place(1, {1, 1})) << "double occupancy";
    EXPECT_FALSE(s.place(1, {4, 0})) << "out of range";
    EXPECT_TRUE(s.place(1, {1, 2}));

    EXPECT_EQ(s.at({1, 1}), 0);
    EXPECT_EQ(s.at({0, 0}), NoNode);
    EXPECT_TRUE(s.isPlaced(0));
    EXPECT_FALSE(s.isPlaced(5));
    EXPECT_EQ(s.placedCount(), 2u);

    s.remove(0);
    EXPECT_FALSE(s.isPlaced(0));
    EXPECT_TRUE(s.isFree({1, 1}));
    EXPECT_EQ(s.placedCount(), 1u);

    // Free matrix mirrors occupancy.
    const auto free = s.freeMatrix();
    EXPECT_EQ(free(1, 2), 0);
    EXPECT_EQ(free(1, 1), 1);
    EXPECT_EQ(free.count(1), 15u);

    s.clear();
    EXPECT_EQ(s.placedCount(), 0u);
}

TEST(Sdfg, FreeNeighborCount)
{
    Sdfg s(4, 4);
    // Corner has 3 neighbors; interior has 8.
    EXPECT_EQ(s.freeNeighbors({0, 0}), 3);
    EXPECT_EQ(s.freeNeighbors({1, 1}), 8);
    s.place(0, {1, 2});
    EXPECT_EQ(s.freeNeighbors({1, 1}), 7);
}

// ---------------------------------------------------------------------
// ConfigBlock.
// ---------------------------------------------------------------------

struct ConfigFixture : ::testing::Test
{
    accel::AccelParams accel = accel::AccelParams::m128();
    ic::AccelNocInterconnect ic{accel.rows, accel.cols, 4};
    InstructionMapper mapper{accel, ic};
    ConfigBlock block{accel};

    accel::AcceleratorConfig
    buildFor(const workloads::Kernel &kernel, ConfigOptions opts = {})
    {
        auto ldfg = Ldfg::build(kernel.loopBody());
        EXPECT_TRUE(ldfg.has_value());
        const auto map = mapper.map(*ldfg);
        return block.build(*ldfg, map.sdfg, opts, kernel.loop_start,
                           kernel.loop_end);
    }
};

TEST_F(ConfigFixture, SlotsMirrorLdfg)
{
    const auto kernel = workloads::makeHotspot(256);
    const auto cfg = buildFor(kernel);
    const auto body = kernel.loopBody();
    ASSERT_EQ(cfg.slots.size(), body.size());
    for (size_t i = 0; i < cfg.slots.size(); ++i) {
        EXPECT_EQ(cfg.slots[i].node, int(i));
        EXPECT_EQ(cfg.slots[i].inst.op, body[i].op);
        EXPECT_TRUE(cfg.slots[i].pos.valid());
    }
    EXPECT_EQ(cfg.region_start, kernel.loop_start);
    EXPECT_EQ(cfg.region_end, kernel.loop_end);
    EXPECT_GT(cfg.config_words, 4 * cfg.slots.size());
}

TEST_F(ConfigFixture, MemoryAnnotations)
{
    // hotspot: 3 t[] loads share base a0 -> one vector group with a
    // leader; all loads prefetch along their induction bases.
    const auto kernel = workloads::makeHotspot(256);
    ConfigOptions opts;
    const auto cfg = buildFor(kernel, opts);

    int grouped = 0, leaders = 0, prefetchers = 0;
    for (const auto &slot : cfg.slots) {
        if (slot.vector_group >= 0) {
            ++grouped;
            leaders += slot.vector_leader;
        }
        prefetchers += slot.prefetch;
    }
    EXPECT_EQ(grouped, 3);
    EXPECT_EQ(leaders, 1);
    EXPECT_GE(prefetchers, 4);

    // Disabling the options clears the annotations.
    ConfigOptions off;
    off.enable_vectorization = false;
    off.enable_prefetch = false;
    off.enable_forwarding = false;
    const auto plain = buildFor(kernel, off);
    for (const auto &slot : plain.slots) {
        EXPECT_EQ(slot.vector_group, -1);
        EXPECT_FALSE(slot.prefetch);
        EXPECT_EQ(slot.forward_from_store, NoNode);
    }
}

TEST_F(ConfigFixture, TilingGeometry)
{
    const auto kernel = workloads::makeNn(256);
    ConfigOptions opts;
    opts.tile_factor = 64; // ask for far more than fits
    const auto cfg = buildFor(kernel, opts);

    const int max_tiles = [&] {
        auto ldfg = Ldfg::build(kernel.loopBody());
        const auto map = mapper.map(*ldfg);
        return ConfigBlock::maxTileFactor(map.sdfg, accel);
    }();
    EXPECT_EQ(cfg.tileCount(), max_tiles) << "clamped to the grid";
    EXPECT_GT(cfg.tileCount(), 1);

    // Instances occupy disjoint origins and stagger their inductions.
    std::set<std::pair<int, int>> origins;
    for (int k = 0; k < cfg.tileCount(); ++k) {
        const auto &inst = cfg.instances[size_t(k)];
        EXPECT_TRUE(
            origins.insert({inst.origin.r, inst.origin.c}).second);
        for (const auto &ind : cfg.inductions) {
            auto it = inst.reg_offsets.find(ind.unified_reg);
            ASSERT_NE(it, inst.reg_offsets.end());
            EXPECT_EQ(it->second, k * ind.step);
        }
    }
    // The induction immediate scales by the tile count.
    for (const auto &ind : cfg.inductions) {
        auto it = cfg.imm_overrides.find(ind.update_node);
        ASSERT_NE(it, cfg.imm_overrides.end());
        EXPECT_EQ(it->second, ind.step * cfg.tileCount());
    }
}

TEST_F(ConfigFixture, SerialLoopNeverTiles)
{
    // backprop carries a reduction; the builder warns and clamps when
    // asked to tile a loop without usable induction staggering. (Its
    // pointers are inductions, so tiling is *geometrically* possible;
    // the controller's parallel_hint gate is what keeps it off. Here
    // we only check the geometry path doesn't break.)
    const auto kernel = workloads::makeBackprop(256);
    ConfigOptions opts;
    opts.tile_factor = 1;
    const auto cfg = buildFor(kernel, opts);
    EXPECT_EQ(cfg.tileCount(), 1);
}

TEST_F(ConfigFixture, ConfigCyclesScaleWithBitstream)
{
    const auto small = buildFor(workloads::makeGaussian(256));
    const auto large = buildFor(workloads::makeSrad(512));
    EXPECT_GT(block.configCycles(large), block.configCycles(small));
    EXPECT_EQ(block.configCycles(small), small.config_words);
}

// ---------------------------------------------------------------------
// ConfigCache.
// ---------------------------------------------------------------------

accel::AcceleratorConfig
dummyConfig(uint32_t region_start)
{
    accel::AcceleratorConfig cfg;
    cfg.region_start = region_start;
    cfg.config_words = region_start; // distinguishable payload
    return cfg;
}

TEST(ConfigCache, LruEvictionAndHitCounters)
{
    ConfigCache cache(2);
    cache.insert(dummyConfig(0x100));
    cache.insert(dummyConfig(0x200));
    EXPECT_NE(cache.lookup(0x100), nullptr); // 0x100 now MRU
    cache.insert(dummyConfig(0x300));        // evicts 0x200
    EXPECT_EQ(cache.lookup(0x200), nullptr);
    EXPECT_NE(cache.lookup(0x100), nullptr);
    EXPECT_NE(cache.lookup(0x300), nullptr);
    EXPECT_EQ(cache.hits(), 3u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ConfigCache, InsertReplacesAndInvalidateDrops)
{
    ConfigCache cache(4);
    cache.insert(dummyConfig(0x100));
    auto updated = dummyConfig(0x100);
    updated.config_words = 999;
    cache.insert(updated);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.lookup(0x100)->config_words, 999u);
    cache.invalidate(0x100);
    EXPECT_EQ(cache.lookup(0x100), nullptr);
}

// ---------------------------------------------------------------------
// IterativeOptimizer.
// ---------------------------------------------------------------------

TEST(Optimizer, RemapsOnlyOnMeaningfulGain)
{
    const auto accel = accel::AccelParams::m128();
    ic::AccelNocInterconnect ic(accel.rows, accel.cols, 4);
    InstructionMapper mapper(accel, ic);
    IterativeOptimizer opt(mapper, 0.02);

    auto ldfg = Ldfg::build(workloads::makeKmeans(256).loopBody());
    ASSERT_TRUE(ldfg.has_value());
    const auto initial = mapper.map(*ldfg);

    // Same weights: the remap cannot beat the current model by 2%.
    const auto same = opt.optimize(*ldfg, initial.model_latency);
    EXPECT_FALSE(same.remapped);

    // Claim the current configuration is terrible: remap triggers.
    const auto win = opt.optimize(*ldfg, initial.model_latency * 10);
    EXPECT_TRUE(win.remapped);
    EXPECT_LT(win.new_model_latency, win.old_model_latency);
    // Edge measurements are invalidated for the new placement.
    for (const auto &node : ldfg->nodes()) {
        EXPECT_LT(node.edge_lat1, 0.0);
        EXPECT_LT(node.edge_lat2, 0.0);
    }
}

} // namespace
