/**
 * @file
 * Power/area model tests: Table 1 hierarchy consistency, PE-count
 * scaling, activity-based energy accounting (clock gating), and the
 * CPU energy model.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"

namespace
{

using namespace mesa;
using namespace mesa::power;

TEST(PowerModel, Table1HierarchySums)
{
    PowerModel pm(accel::AccelParams::m128());

    const auto mesa_rows = pm.mesaExtensionRows();
    ASSERT_FALSE(mesa_rows.empty());
    // MESA Top ~ 0.502 mm^2 / 0.36 W as synthesized.
    EXPECT_NEAR(mesa_rows.front().area_um2, 502000.0, 1.0);
    EXPECT_NEAR(mesa_rows.front().power_w, 0.36, 1e-6);

    // ArchModel + ConfigBlock roughly compose MESA Top.
    double arch = 0, cfg = 0;
    for (const auto &row : mesa_rows) {
        if (row.name == "MESA ArchModel")
            arch = row.area_um2;
        if (row.name == "MESA ConfigBlock")
            cfg = row.area_um2;
    }
    EXPECT_NEAR(arch + cfg, mesa_rows.front().area_um2, 0.1 * 502000);

    // CPU additions are tiny (<0.05 mm^2 total).
    double add_area = 0;
    for (const auto &row : pm.cpuAdditionRows())
        add_area += row.area_um2;
    EXPECT_LT(add_area, 50000.0);
}

TEST(PowerModel, AcceleratorAreaScalesWithPeCount)
{
    PowerModel p128(accel::AccelParams::m128());
    PowerModel p512(accel::AccelParams::m512());
    PowerModel p64(accel::AccelParams::m64());

    EXPECT_NEAR(p128.acceleratorAreaMm2(), 26.56, 0.01);
    EXPECT_NEAR(p512.acceleratorAreaMm2(), 4 * 26.56, 0.1);
    EXPECT_NEAR(p64.acceleratorAreaMm2(), 26.56 / 2, 0.1);
    // MESA controller is well under 10% of a core (~6mm^2 at 28nm).
    EXPECT_LT(p128.mesaAreaMm2(), 0.6);
}

TEST(PowerModel, EnergyScalesWithActivity)
{
    PowerModel pm(accel::AccelParams::m128());
    accel::AccelRunResult quiet;
    quiet.cycles = 1000;
    quiet.iterations = 10;
    quiet.pe_busy_cycles = 100;
    quiet.loads = 10;
    quiet.stores = 5;

    accel::AccelRunResult busy = quiet;
    busy.pe_busy_cycles = 10000;
    busy.fp_busy_cycles = 5000;
    busy.loads = 1000;
    busy.dram_accesses = 100;
    busy.noc_transfers = 2000;

    const EnergyBreakdown eq = pm.accelEnergy(quiet, 0);
    const EnergyBreakdown eb = pm.accelEnergy(busy, 0);
    EXPECT_GT(eb.compute_nj, eq.compute_nj);
    EXPECT_GT(eb.memory_nj, eq.memory_nj);
    EXPECT_GT(eb.noc_nj, eq.noc_nj);
    EXPECT_GT(eb.total(), eq.total());
    // Same wall-clock -> same static energy (clock gating only cuts
    // dynamic power).
    EXPECT_DOUBLE_EQ(eb.static_nj, eq.static_nj);
}

TEST(PowerModel, ConfigCyclesChargeControlEnergy)
{
    PowerModel pm(accel::AccelParams::m128());
    accel::AccelRunResult run;
    run.cycles = 1000;
    run.iterations = 100;
    const double without = pm.accelEnergy(run, 0).control_nj;
    const double with = pm.accelEnergy(run, 2000).control_nj;
    EXPECT_GT(with, without);
}

TEST(PowerModel, CpuEnergyComposition)
{
    PowerModel pm(accel::AccelParams::m128());
    cpu::RunResult r;
    r.cycles = 100000;
    r.instructions = 200000;
    r.loads = 30000;
    r.stores = 10000;
    r.fp_ops = 50000;
    r.threads = 1;
    const double single = pm.cpuEnergyNj(r);
    EXPECT_GT(single, 0.0);

    // 16 threads at the same cycle count burn ~16x static power.
    cpu::RunResult r16 = r;
    r16.threads = 16;
    EXPECT_GT(pm.cpuEnergyNj(r16), single);

    // More instructions, more energy.
    cpu::RunResult r2 = r;
    r2.instructions *= 2;
    EXPECT_GT(pm.cpuEnergyNj(r2), single);
}

} // namespace
