/**
 * @file
 * Cycle-attribution profiler tests: the exact sum invariant per
 * kernel, bit-identical counters at any shard count, the zero-side-
 * effect guarantee of detached profiling, report round-trips through
 * the JSON parser, the stats diff helper, the perf-history pipeline,
 * and the leveled logger.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "prof/history.hh"
#include "prof/report.hh"
#include "prof/runner.hh"
#include "util/json.hh"
#include "util/json_parse.hh"
#include "util/logging.hh"
#include "util/stats_registry.hh"
#include "workloads/kernel.hh"

namespace
{

using namespace mesa;

core::MesaParams
defaultParams()
{
    return core::MesaParams{};
}

// ---------------------------------------------------------------------
// The invariant: taxonomy buckets sum EXACTLY to offload cycles.
// ---------------------------------------------------------------------

class ProfInvariant : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ProfInvariant, PhasesSumToMeasuredOffloadCycles)
{
    const auto kernel = workloads::kernelByName(GetParam(), {512});
    const auto kp = prof::profileKernel(kernel, defaultParams());

    EXPECT_TRUE(kp.invariant_ok);
    EXPECT_EQ(kp.phases.total(), kp.total_offload_cycles);
    // Per-offload rows carry the invariant individually too.
    uint64_t sum = 0;
    for (const auto &row : kp.offloads) {
        EXPECT_EQ(row.phases.total(), row.total_cycles)
            << "offload @0x" << std::hex << row.region_pc;
        sum += row.total_cycles;
    }
    EXPECT_EQ(sum, kp.total_offload_cycles);

    // Cross-check against an independent unprofiled run: the measured
    // totals and the device share must match what the controller
    // reports without any profiler attached (simulation determinism).
    mem::MainMemory memory;
    kernel.init_data(memory);
    core::MesaController mesa(defaultParams(), memory);
    const auto plain = mesa.runTransparent(
        kernel.program, kernel.fullRange(), kernel.parallel);
    uint64_t wall = 0, device = 0;
    for (const auto &os : plain.offloads) {
        wall += prof::offloadWallCycles(os);
        device += os.accel_cycles;
    }
    EXPECT_EQ(kp.total_offload_cycles, wall);
    EXPECT_EQ(kp.phases[prof::Phase::Compute] +
                  kp.phases[prof::Phase::NocStall] +
                  kp.phases[prof::Phase::MemStall],
              device);
    // Overlapped phases are structurally zero in this timing model.
    EXPECT_EQ(kp.phases[prof::Phase::MonitorDetect], 0u);
    EXPECT_EQ(kp.phases[prof::Phase::ConfigGen], 0u);
    EXPECT_EQ(kp.phases[prof::Phase::VerifyGate], 0u);
}

INSTANTIATE_TEST_SUITE_P(Kernels, ProfInvariant,
                         ::testing::Values("nn", "kmeans", "srad",
                                           "pathfinder", "hotspot"));

TEST(ProfInvariant, SpatialAttributionMatchesDeviceCycles)
{
    const auto kernel = workloads::kernelByName("srad", {512});
    const auto kp = prof::profileKernel(kernel, defaultParams());

    // The accelerator-side decomposition covers exactly the device
    // cycles the fold attributed (reconfig cycles live in the
    // ConfigStream bucket, not here).
    EXPECT_EQ(kp.spatial.attributedTotal(),
              kp.phases[prof::Phase::Compute] +
                  kp.phases[prof::Phase::NocStall] +
                  kp.phases[prof::Phase::MemStall]);
    // A kernel that offloaded did real work on real PEs.
    ASSERT_GT(kp.accel_cycles, 0u);
    uint64_t busy = 0, ops = 0;
    for (size_t i = 0; i < kp.spatial.pe_busy.size(); ++i) {
        busy += kp.spatial.pe_busy[i];
        ops += kp.spatial.pe_ops[i];
    }
    EXPECT_GT(busy, 0u);
    EXPECT_GT(ops, 0u);
}

// ---------------------------------------------------------------------
// Determinism: identical counters at any shard count.
// ---------------------------------------------------------------------

TEST(ProfDeterminism, SuiteIdenticalAtAnyJobCount)
{
    const auto kernels = std::vector<workloads::Kernel>{
        workloads::kernelByName("nn", {256}),
        workloads::kernelByName("srad", {256}),
        workloads::kernelByName("hotspot", {256}),
        workloads::kernelByName("kmeans", {256}),
    };
    const auto serial = prof::profileSuite(kernels, defaultParams(), 1);
    const auto sharded = prof::profileSuite(kernels, defaultParams(), 4);

    EXPECT_EQ(prof::flattenProfile(serial), prof::flattenProfile(sharded));

    // Stronger: the rendered reports are byte-identical.
    const prof::ReportMeta meta{"M-128", 256};
    JsonWriter a, b;
    prof::writeProfileJson(serial, meta, a);
    prof::writeProfileJson(sharded, meta, b);
    EXPECT_EQ(a.str(), b.str());
}

// ---------------------------------------------------------------------
// Detached profiling changes nothing.
// ---------------------------------------------------------------------

TEST(ProfZeroCost, DetachedProfilerDoesNotPerturbTheRun)
{
    const auto kernel = workloads::kernelByName("pathfinder", {512});
    core::MesaParams params;

    auto run = [&](bool profiled) {
        mem::MainMemory memory;
        kernel.init_data(memory);
        core::MesaController mesa(params, memory);
        prof::AccelProfile profile;
        if (profiled)
            mesa.attachProfile(&profile);
        return mesa.runTransparent(kernel.program, kernel.fullRange(),
                                   kernel.parallel);
    };
    const auto plain = run(false);
    const auto profiled = run(true);

    EXPECT_EQ(plain.total_cycles, profiled.total_cycles);
    EXPECT_EQ(plain.cpu_cycles, profiled.cpu_cycles);
    EXPECT_EQ(plain.accel_cycles, profiled.accel_cycles);
    ASSERT_EQ(plain.offloads.size(), profiled.offloads.size());
    for (size_t i = 0; i < plain.offloads.size(); ++i) {
        const auto &p = plain.offloads[i];
        const auto &q = profiled.offloads[i];
        EXPECT_EQ(p.accel_cycles, q.accel_cycles);
        EXPECT_EQ(p.accel_iterations, q.accel_iterations);
        EXPECT_EQ(p.totalConfigCycles(), q.totalConfigCycles());
        // The unprofiled run carries no attribution...
        EXPECT_EQ(p.prof_compute_cycles + p.prof_noc_stall_cycles +
                      p.prof_mem_stall_cycles,
                  0u);
        // ...the profiled one attributes exactly its device cycles.
        EXPECT_EQ(q.prof_compute_cycles + q.prof_noc_stall_cycles +
                      q.prof_mem_stall_cycles,
                  q.accel_cycles);
    }
}

// ---------------------------------------------------------------------
// The per-offload fold rules.
// ---------------------------------------------------------------------

TEST(ProfFold, AttributeOffloadSplitsWhenProfiled)
{
    core::OffloadStats os;
    os.encode_cycles = 10;
    os.mapping_cycles = 20;
    os.config_cycles = 30;
    os.reconfig_cycles = 5;
    os.sched_wait_cycles = 7;
    os.accel_cycles = 100;
    os.cpu_reexec_instructions = 3;
    os.prof_compute_cycles = 60;
    os.prof_noc_stall_cycles = 15;
    os.prof_mem_stall_cycles = 25;

    const auto row = prof::attributeOffload(os);
    EXPECT_EQ(row.total_cycles, prof::offloadWallCycles(os));
    EXPECT_EQ(row.phases.total(), row.total_cycles);
    EXPECT_EQ(row.phases[prof::Phase::Encode], 10u);
    EXPECT_EQ(row.phases[prof::Phase::Map], 20u);
    EXPECT_EQ(row.phases[prof::Phase::ConfigStream], 35u);
    EXPECT_EQ(row.phases[prof::Phase::SchedWait], 7u);
    EXPECT_EQ(row.phases[prof::Phase::Compute], 60u);
    EXPECT_EQ(row.phases[prof::Phase::NocStall], 15u);
    EXPECT_EQ(row.phases[prof::Phase::MemStall], 25u);
    EXPECT_EQ(row.phases[prof::Phase::FaultRecovery], 3u);
}

TEST(ProfFold, UnprofiledDeviceCyclesStayOneComputeBucket)
{
    // Arbiter-served offloads carry no prof_* split; the invariant
    // must hold anyway.
    core::OffloadStats os;
    os.accel_cycles = 100;
    const auto row = prof::attributeOffload(os);
    EXPECT_EQ(row.phases[prof::Phase::Compute], 100u);
    EXPECT_EQ(row.phases.total(), row.total_cycles);
}

// ---------------------------------------------------------------------
// Report round-trips.
// ---------------------------------------------------------------------

TEST(ProfReport, JsonRoundTripsThroughTheParser)
{
    const auto kernel = workloads::kernelByName("nn", {256});
    prof::SuiteProfile suite;
    suite.add(prof::profileKernel(kernel, defaultParams()));

    JsonWriter w;
    prof::writeProfileJson(suite, {"M-128", 256}, w);
    auto doc = parseJson(w.str());
    ASSERT_TRUE(doc && doc->isObject());
    EXPECT_EQ(doc->find("schema")->asString(), "mesa-prof-1");

    const JsonValue &kernels = *doc->find("kernels");
    ASSERT_TRUE(kernels.isArray());
    ASSERT_EQ(kernels.items.size(), 1u);
    const JsonValue &kp = kernels.items[0];
    EXPECT_EQ(kp.find("name")->asString(), "nn");
    EXPECT_EQ(uint64_t(kp.find("total_offload_cycles")->asNumber()),
              suite.kernels[0].total_offload_cycles);

    // The phase object sums to the total, post-serialization.
    const JsonValue &phases = *kp.find("phases");
    double sum = 0;
    for (const auto &[name, v] : phases.members)
        sum += v.asNumber();
    EXPECT_EQ(uint64_t(sum), suite.kernels[0].total_offload_cycles);

    // Heatmaps carry rows*cols entries.
    const JsonValue &spatial = *kp.find("spatial");
    const auto rows = int(spatial.find("rows")->asNumber());
    const auto cols = int(spatial.find("cols")->asNumber());
    const JsonValue &busy = *spatial.find("pe_busy");
    EXPECT_EQ(busy.find("data")->items.size(), size_t(rows) * cols);
}

TEST(ProfReport, HeatmapJsonRoundTrip)
{
    const std::vector<uint64_t> grid{1, 2, 3, 4, 5, 6};
    JsonWriter w;
    prof::writeHeatmapJson(grid, 2, 3, w);
    auto doc = parseJson(w.str());
    ASSERT_TRUE(doc && doc->isObject());
    EXPECT_EQ(int(doc->find("rows")->asNumber()), 2);
    EXPECT_EQ(int(doc->find("cols")->asNumber()), 3);
    const auto &data = doc->find("data")->items;
    ASSERT_EQ(data.size(), grid.size());
    for (size_t i = 0; i < grid.size(); ++i)
        EXPECT_EQ(uint64_t(data[i].asNumber()), grid[i]);
}

TEST(ProfReport, CounterTraceAndPrometheusAreWellFormed)
{
    const auto kernel = workloads::kernelByName("nn", {256});
    prof::SuiteProfile suite;
    suite.add(prof::profileKernel(kernel, defaultParams()));

    std::ostringstream trace;
    prof::writeCounterTrace(suite, trace);
    auto doc = parseJson(trace.str());
    ASSERT_TRUE(doc && doc->isObject());
    // One instant marker + one counter sample per kernel.
    EXPECT_EQ(doc->find("traceEvents")->items.size(), 2u);

    std::ostringstream prom;
    prof::writePrometheus(suite, {"M-128", 256}, prom);
    const std::string text = prom.str();
    EXPECT_NE(text.find("# TYPE mesa_prof_phase_cycles gauge"),
              std::string::npos);
    EXPECT_NE(text.find("mesa_prof_invariant_ok{kernel=\"nn\"} 1"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// The stats diff helper (mesa_prof --baseline rides on this).
// ---------------------------------------------------------------------

TEST(StatsDiffTest, FlagsAddedRemovedAndChanged)
{
    const std::map<std::string, double> before{
        {"a", 100.0}, {"b", 50.0}, {"gone", 1.0}};
    const std::map<std::string, double> after{
        {"a", 100.0}, {"b", 75.0}, {"new", 2.0}};

    const StatsDiff diff = diffStatValues(before, after);
    ASSERT_EQ(diff.added.size(), 1u);
    EXPECT_EQ(diff.added[0], "new");
    ASSERT_EQ(diff.removed.size(), 1u);
    EXPECT_EQ(diff.removed[0], "gone");
    ASSERT_EQ(diff.changed.size(), 1u);
    EXPECT_EQ(diff.changed[0].path, "b");
    EXPECT_DOUBLE_EQ(diff.changed[0].relDelta(), 0.5);
}

TEST(StatsDiffTest, ToleranceSuppressesSmallMoves)
{
    const std::map<std::string, double> before{{"a", 100.0}};
    const std::map<std::string, double> after{{"a", 104.0}};
    EXPECT_TRUE(diffStatValues(before, after, 0.05).empty());
    EXPECT_FALSE(diffStatValues(before, after, 0.02).empty());
}

TEST(StatsDiffTest, ZeroBaselineAlwaysFlagsMovement)
{
    const std::map<std::string, double> before{{"a", 0.0}};
    const std::map<std::string, double> after{{"a", 1.0}};
    EXPECT_FALSE(diffStatValues(before, after, 0.5).empty());
}

// ---------------------------------------------------------------------
// The perf-history pipeline.
// ---------------------------------------------------------------------

TEST(ProfHistory, AppendAndReadBack)
{
    const std::string path =
        ::testing::TempDir() + "mesa_prof_history_test.jsonl";
    std::remove(path.c_str());

    prof::HistoryRecord rec = prof::makeHistoryRecord("test_prof");
    rec.metrics["suite.total_offload_cycles"] = 1234.0;
    ASSERT_TRUE(prof::appendHistory(path, rec));
    ASSERT_TRUE(prof::appendHistory(path, rec));

    const auto records = prof::readHistory(path);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].tool, "test_prof");
    EXPECT_EQ(records[0].timestamp, rec.timestamp);
    EXPECT_EQ(records[0].hardware_concurrency,
              rec.hardware_concurrency);
    EXPECT_DOUBLE_EQ(
        records[1].metrics.at("suite.total_offload_cycles"), 1234.0);
    std::remove(path.c_str());
}

TEST(ProfHistory, ToleratesCorruptLines)
{
    const std::string path =
        ::testing::TempDir() + "mesa_prof_history_corrupt.jsonl";
    {
        std::ofstream f(path);
        f << "{\"tool\": \"ok\", \"metrics\": {\"m\": 1}}\n";
        f << "not json at all\n";
        f << "{\"tool\": \"ok2\"\n"; // truncated record
    }
    const auto records = prof::readHistory(path);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].tool, "ok");
    std::remove(path.c_str());
}

TEST(ProfHistory, RecordJsonParses)
{
    prof::HistoryRecord rec = prof::makeHistoryRecord("x");
    rec.metrics["m"] = 3.5;
    auto doc = parseJson(prof::historyRecordJson(rec));
    ASSERT_TRUE(doc && doc->isObject());
    EXPECT_EQ(doc->find("tool")->asString(), "x");
    EXPECT_DOUBLE_EQ(doc->find("metrics")->find("m")->asNumber(), 3.5);
}

// ---------------------------------------------------------------------
// The leveled logger.
// ---------------------------------------------------------------------

TEST(LoggerTest, LevelFiltersAndFormats)
{
    Logger &log = Logger::global();
    const LogLevel saved = log.level();

    std::ostringstream captured;
    log.setStream(&captured);
    log.setLevel(LogLevel::Warn);

    logInfo("test", "should be filtered");
    logWarn("test", "visible ", 42);
    logError("test", "also visible");

    log.setStream(nullptr);
    log.setLevel(saved);

    const std::string text = captured.str();
    EXPECT_EQ(text.find("should be filtered"), std::string::npos);
    EXPECT_NE(text.find("warn: [test] visible 42"), std::string::npos);
    EXPECT_NE(text.find("error: [test] also visible"),
              std::string::npos);
}

TEST(LoggerTest, LevelNamesRoundTrip)
{
    EXPECT_EQ(logLevelByName("debug"), LogLevel::Debug);
    EXPECT_EQ(logLevelByName("warning"), LogLevel::Warn);
    EXPECT_EQ(logLevelByName("error"), LogLevel::Error);
    EXPECT_FALSE(logLevelByName("nonsense").has_value());
    EXPECT_STREQ(logLevelName(LogLevel::Info), "info");
}

} // namespace
