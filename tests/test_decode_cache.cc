/**
 * @file
 * Decoded-basic-block cache tests: the cache must be pure
 * memoization. Every observable — architectural state, memory image,
 * instret, halt behavior — is bit-identical with the cache on or
 * off, including under self-modifying code and memory reloads, and
 * runWhileInRegion never counts the halting step.
 */

#include <gtest/gtest.h>

#include "cpu/system.hh"
#include "riscv/assembler.hh"
#include "riscv/emulator.hh"
#include "workloads/kernel.hh"

#include "helpers.hh"

namespace
{

using namespace mesa;
using namespace mesa::riscv;
using namespace mesa::riscv::reg;

/** Run one kernel start-to-halt with the decode cache on or off. */
test::GoldenResult
runKernel(const workloads::Kernel &kernel, bool decode_cache,
          uint64_t max_steps = 50'000'000)
{
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    Emulator emu(memory);
    emu.setDecodeCache(decode_cache);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    emu.run(max_steps);

    test::GoldenResult res;
    res.state = emu.state();
    res.memory = memory.snapshot();
    res.instructions = emu.instret();
    return res;
}

/** Full architectural-state comparison. */
void
expectSameState(const ArchState &a, const ArchState &b)
{
    EXPECT_EQ(a.pc, b.pc);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(a.x[size_t(i)], b.x[size_t(i)]) << "x" << i;
        EXPECT_EQ(a.f[size_t(i)], b.f[size_t(i)]) << "f" << i;
    }
}

TEST(DecodeCache, CachedMatchesUncachedAcrossSuite)
{
    // Every kernel in the suite, end to end: the decoded-block cache
    // must not change a single architectural bit.
    for (const auto &kernel : workloads::rodiniaSuite({96})) {
        SCOPED_TRACE(kernel.name);
        const auto cached = runKernel(kernel, true);
        const auto plain = runKernel(kernel, false);
        expectSameState(cached.state, plain.state);
        EXPECT_EQ(cached.instructions, plain.instructions);
        EXPECT_TRUE(test::sameMemory(cached.memory, plain.memory));
    }
}

TEST(DecodeCache, BlocksPopulateAndFlush)
{
    Assembler as;
    as.li(a0, 0);
    as.li(t0, 8);
    as.label("loop");
    as.addi(a0, a0, 3);
    as.addi(t0, t0, -1);
    as.bne(t0, zero, "loop");
    as.ecall();
    const Program prog = as.assemble();

    mem::MainMemory memory;
    cpu::loadProgram(memory, prog);
    Emulator emu(memory);
    emu.reset(prog.base_pc);
    emu.run(1000);
    EXPECT_EQ(emu.x(a0), 24u);
    EXPECT_GT(emu.decodedBlocks(), 0u);

    emu.flushDecodeCache();
    EXPECT_EQ(emu.decodedBlocks(), 0u);

    // Disabling keeps the cache empty through another full run.
    emu.setDecodeCache(false);
    emu.reset(prog.base_pc);
    emu.run(1000);
    EXPECT_EQ(emu.x(a0), 24u);
    EXPECT_EQ(emu.decodedBlocks(), 0u);
}

TEST(DecodeCache, MidRunOverwriteForcesRedecode)
{
    // Patch an instruction after the first loop iteration has been
    // decoded and executed: the page write-generation bump must make
    // the stale block re-decode, with or without the cache.
    Assembler as;
    as.li(a0, 0);
    as.li(t0, 3);
    as.label("loop");
    as.addi(a0, a0, 1);
    as.addi(t0, t0, -1);
    as.bne(t0, zero, "loop");
    as.ecall();
    const Program prog = as.assemble();

    Assembler patch_as;
    patch_as.addi(a0, a0, 10);
    const uint32_t patch_word = patch_as.assemble().words.at(0);

    for (bool decode_cache : {true, false}) {
        SCOPED_TRACE(decode_cache ? "cached" : "uncached");
        mem::MainMemory memory;
        cpu::loadProgram(memory, prog);
        Emulator emu(memory);
        emu.setDecodeCache(decode_cache);
        emu.reset(prog.base_pc);
        // li, li, then one full iteration (addi/addi/bne): 5 steps
        // puts pc back on the loop head with the block cached.
        for (int i = 0; i < 5; ++i)
            ASSERT_TRUE(emu.step());
        ASSERT_EQ(emu.state().pc, prog.labelPc("loop"));
        ASSERT_EQ(emu.x(a0), 1u);

        memory.write32(prog.labelPc("loop"), patch_word);
        emu.run(1000);
        // Two remaining iterations must see the patched +10.
        EXPECT_EQ(emu.x(a0), 21u);
        EXPECT_TRUE(emu.halted());
    }
}

TEST(DecodeCache, MemoryClearDropsStaleBlocks)
{
    // MainMemory::clear() kills every page; the epoch bump must stop
    // the emulator from executing out of dead decoded blocks.
    Assembler as;
    as.li(a0, 7);
    as.ecall();
    const Program prog = as.assemble();

    Assembler as2;
    as2.li(a0, 9);
    as2.ecall();
    const Program prog2 = as2.assemble();

    mem::MainMemory memory;
    cpu::loadProgram(memory, prog);
    Emulator emu(memory);
    emu.reset(prog.base_pc);
    emu.run(100);
    EXPECT_EQ(emu.x(a0), 7u);

    memory.clear();
    cpu::loadProgram(memory, prog2);
    emu.reset(prog2.base_pc);
    emu.run(100);
    EXPECT_EQ(emu.x(a0), 9u);
}

TEST(DecodeCache, RunWhileInRegionExcludesHaltingStep)
{
    // A halt inside the region must not be counted: a failed step
    // commits nothing, so the return value is exactly the number of
    // committed region instructions.
    Assembler as;
    as.addi(a0, a0, 1);
    as.addi(a0, a0, 2);
    as.ecall();
    const Program prog = as.assemble();

    for (bool decode_cache : {true, false}) {
        SCOPED_TRACE(decode_cache ? "cached" : "uncached");
        mem::MainMemory memory;
        cpu::loadProgram(memory, prog);
        Emulator emu(memory);
        emu.setDecodeCache(decode_cache);
        emu.reset(prog.base_pc);
        const uint64_t n =
            emu.runWhileInRegion(prog.base_pc, prog.endPc(), 100);
        EXPECT_EQ(n, 2u);
        EXPECT_EQ(emu.instret(), 2u);
        EXPECT_TRUE(emu.halted());
        EXPECT_EQ(emu.x(a0), 3u);
    }
}

TEST(DecodeCache, RunWhileInRegionCountsExitingBranch)
{
    // The instruction that transfers control out of the region does
    // commit, so it is counted; execution stops with pc outside.
    Assembler as;
    as.li(t0, 2);
    as.label("loop");
    as.addi(a0, a0, 5);
    as.addi(t0, t0, -1);
    as.bne(t0, zero, "loop");
    as.ecall();
    const Program prog = as.assemble();

    mem::MainMemory memory;
    cpu::loadProgram(memory, prog);
    Emulator emu(memory);
    emu.reset(prog.base_pc);
    ASSERT_TRUE(emu.step()); // execute the li prologue
    const uint32_t lo = prog.labelPc("loop");
    const uint32_t hi = lo + 12;
    const uint64_t n = emu.runWhileInRegion(lo, hi, 100);
    // Two iterations of three instructions each; the final bne falls
    // through to the ecall one past the region, ending the run.
    EXPECT_EQ(n, 6u);
    EXPECT_FALSE(emu.halted());
    EXPECT_EQ(emu.state().pc, hi);
    EXPECT_EQ(emu.x(a0), 10u);
}

} // namespace
