/**
 * @file
 * Name/metadata completeness: every enum value has a distinct,
 * non-placeholder name; op classifications are internally consistent
 * across the predicate helpers.
 */

#include <gtest/gtest.h>

#include <set>

#include "cpu/monitor.hh"
#include "dfg/ldfg.hh"
#include "mesa/imap_fsm.hh"
#include "riscv/isa.hh"

namespace
{

using namespace mesa;
using namespace mesa::riscv;

TEST(Names, EveryOpHasAUniqueName)
{
    std::set<std::string> seen;
    for (int i = 1; i < int(Op::NumOps); ++i) {
        const std::string name = opName(Op(i));
        EXPECT_NE(name, "???") << "op " << i;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate name " << name;
    }
}

TEST(Names, EveryOpClassifies)
{
    for (int i = 1; i < int(Op::NumOps); ++i) {
        const Op op = Op(i);
        const OpClass cls = opClass(op);
        EXPECT_NE(std::string(opClassName(cls)), "???");
        // Predicate consistency.
        EXPECT_EQ(isMem(op), isLoad(op) || isStore(op));
        EXPECT_EQ(isControl(op), isBranch(op) || isJump(op));
        if (isStore(op) || isBranch(op)) {
            EXPECT_FALSE(writesDest(op)) << opName(op);
        }
        if (fpDest(op)) {
            EXPECT_TRUE(writesDest(op)) << opName(op);
        }
        EXPECT_GE(numSources(op), 0);
        EXPECT_LE(numSources(op), 3);
    }
}

TEST(Names, RejectAndErrorStringsComplete)
{
    using cpu::RejectReason;
    for (auto r : {RejectReason::None, RejectReason::TooLarge,
                   RejectReason::UnsupportedInstr,
                   RejectReason::EarlyExit, RejectReason::PoorMix,
                   RejectReason::FewIterations}) {
        EXPECT_NE(std::string(cpu::rejectReasonName(r)), "???");
    }
    using dfg::BuildError;
    for (auto e : {BuildError::None, BuildError::InnerLoop,
                   BuildError::UnsupportedOp, BuildError::ExitBranch,
                   BuildError::IndirectJump,
                   BuildError::TooManyInstructions}) {
        EXPECT_NE(std::string(dfg::buildErrorName(e)), "???");
    }
    using core::ImapState;
    for (int s = 0; s < int(ImapState::NumStates); ++s)
        EXPECT_NE(std::string(core::imapStateName(ImapState(s))),
                  "???");
}

TEST(Names, OpLatencyConfigCoversAllClasses)
{
    const dfg::OpLatencyConfig cfg;
    for (int c = 1; c < int(OpClass::NumClasses); ++c)
        EXPECT_GT(cfg.cycles(OpClass(c)), 0.0)
            << opClassName(OpClass(c));
}

} // namespace
