/**
 * @file
 * Accelerator golden-model equivalence and feature tests: executing a
 * mapped loop on the spatial-accelerator simulator must produce
 * bit-identical memory (and, untiled, architectural state) to the
 * functional RISC-V emulator — across kernels, optimizations, tiling,
 * and pipelining (parameterized sweep). Also covers predication,
 * store->load forwarding, vectorization, and counter behaviour.
 */

#include <gtest/gtest.h>

#include "helpers.hh"

namespace
{

using namespace mesa;
using namespace mesa::test;
using core::MesaParams;
using workloads::Kernel;
using workloads::kernelByName;

MesaParams
baseParams()
{
    MesaParams p;
    p.accel = accel::AccelParams::m128();
    p.iterative_optimization = false;
    return p;
}

/** The whole architectural state must survive the offload: merged
 *  induction registers equal the sequential exit values, and
 *  temporaries come from the globally last iteration. */
void
expectStateMatches(const Kernel &kernel, const riscv::ArchState &got,
                   const riscv::ArchState &want)
{
    (void)kernel;
    for (int r = 0; r < 32; ++r) {
        EXPECT_EQ(got.x[size_t(r)], want.x[size_t(r)])
            << "x" << r << " mismatch";
        EXPECT_EQ(got.f[size_t(r)], want.f[size_t(r)])
            << "f" << r << " mismatch";
    }
}

// ---------------------------------------------------------------------
// Parameterized golden-equivalence sweep: kernel x configuration.
// ---------------------------------------------------------------------

struct SweepCase
{
    const char *kernel;
    bool tiling;
    bool pipelining;
    bool vectorization;
    bool forwarding;
    bool prefetch;
};

std::string
caseName(const ::testing::TestParamInfo<SweepCase> &info)
{
    const SweepCase &c = info.param;
    std::string name = c.kernel;
    for (auto &ch : name)
        if (!isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    name += c.tiling ? "_tile" : "_notile";
    name += c.pipelining ? "_pipe" : "_nopipe";
    if (!c.vectorization)
        name += "_novec";
    if (!c.forwarding)
        name += "_nofwd";
    if (!c.prefetch)
        name += "_nopf";
    return name;
}

class GoldenEquivalence : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(GoldenEquivalence, MemoryMatchesEmulator)
{
    const SweepCase &c = GetParam();
    const Kernel kernel = kernelByName(c.kernel, {512});
    ASSERT_TRUE(kernel.mesa_supported);

    MesaParams params = baseParams();
    params.enable_tiling = c.tiling;
    params.enable_pipelining = c.pipelining;
    params.enable_vectorization = c.vectorization;
    params.enable_forwarding = c.forwarding;
    params.enable_prefetch = c.prefetch;

    const GoldenResult want = runReference(kernel);
    const OffloadRun got = runWithOffload(kernel, params);

    ASSERT_TRUE(got.stats.has_value()) << "offload failed";
    EXPECT_GT(got.stats->accel_iterations, 0u);
    EXPECT_TRUE(sameMemory(got.memory, want.memory));
    expectStateMatches(kernel, got.state, want.state);
    EXPECT_EQ(got.state.pc, want.state.pc);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, GoldenEquivalence,
    ::testing::Values(
        SweepCase{"nn", false, false, true, true, true},
        SweepCase{"nn", true, true, true, true, true},
        SweepCase{"kmeans", false, false, true, true, true},
        SweepCase{"kmeans", true, true, true, true, true},
        SweepCase{"hotspot", false, false, true, true, true},
        SweepCase{"hotspot", true, true, true, true, true},
        SweepCase{"hotspot", true, true, false, false, false},
        SweepCase{"cfd", false, false, true, true, true},
        SweepCase{"cfd", true, true, true, true, true},
        SweepCase{"backprop", false, false, true, true, true},
        SweepCase{"bfs", false, false, true, true, true},
        SweepCase{"bfs", true, false, true, true, true},
        SweepCase{"srad", false, false, true, true, true},
        SweepCase{"srad", true, true, true, true, true},
        SweepCase{"lud", false, false, true, true, true},
        SweepCase{"pathfinder", false, false, true, true, true},
        SweepCase{"pathfinder", true, true, true, true, true},
        SweepCase{"streamcluster", true, true, true, true, true},
        SweepCase{"lavaMD", true, true, true, true, true},
        SweepCase{"gaussian", false, false, true, true, true},
        SweepCase{"gaussian", true, true, true, true, true}),
    caseName);

// ---------------------------------------------------------------------
// Untiled runs must reproduce the *entire* architectural state.
// ---------------------------------------------------------------------

class UntiledExactState : public ::testing::TestWithParam<const char *>
{
};

TEST_P(UntiledExactState, AllRegistersMatch)
{
    const Kernel kernel = kernelByName(GetParam(), {256});
    MesaParams params = baseParams();
    params.enable_tiling = false;
    params.enable_pipelining = false;

    const GoldenResult want = runReference(kernel);
    const OffloadRun got = runWithOffload(kernel, params);
    ASSERT_TRUE(got.stats.has_value());
    EXPECT_EQ(got.state, want.state)
        << "architectural state diverged from the golden model";
    EXPECT_TRUE(sameMemory(got.memory, want.memory));
}

INSTANTIATE_TEST_SUITE_P(Suite, UntiledExactState,
                         ::testing::Values("nn", "kmeans", "hotspot",
                                           "cfd", "backprop", "bfs",
                                           "lud", "pathfinder",
                                           "gaussian", "streamcluster",
                                           "lavaMD", "srad"));

// ---------------------------------------------------------------------
// Feature-specific behaviour.
// ---------------------------------------------------------------------

TEST(AccelFeatures, PredicationDisablesOps)
{
    // bfs has a guarded store; some iterations must be predicated off.
    const Kernel kernel = kernelByName("bfs", {512});
    MesaParams params = baseParams();
    params.enable_tiling = false;
    const OffloadRun got = runWithOffload(kernel, params);
    ASSERT_TRUE(got.stats.has_value());
    EXPECT_GT(got.stats->accel.disabled_ops, 0u)
        << "expected predicated-off executions in bfs";
    // Not every iteration stores: stores < iterations.
    EXPECT_LT(got.stats->accel.stores, got.stats->accel_iterations);
}

TEST(AccelFeatures, TilingMultipliesInstances)
{
    const Kernel kernel = kernelByName("nn", {512});
    MesaParams params = baseParams();
    params.enable_tiling = true;
    params.enable_pipelining = false;

    const OffloadRun got = runWithOffload(kernel, params);
    ASSERT_TRUE(got.stats.has_value());
    EXPECT_GT(got.stats->tile_factor, 1) << "nn should tile on M-128";

    // Tiling must improve throughput over untiled.
    MesaParams solo = params;
    solo.enable_tiling = false;
    const OffloadRun ref = runWithOffload(kernel, solo);
    ASSERT_TRUE(ref.stats.has_value());
    EXPECT_LT(got.stats->accel_cycles, ref.stats->accel_cycles);
}

TEST(AccelFeatures, PipeliningOverlapsIterations)
{
    const Kernel kernel = kernelByName("kmeans", {512});
    MesaParams with = baseParams();
    with.enable_tiling = false;
    with.enable_pipelining = true;
    MesaParams without = with;
    without.enable_pipelining = false;

    const OffloadRun a = runWithOffload(kernel, with);
    const OffloadRun b = runWithOffload(kernel, without);
    ASSERT_TRUE(a.stats.has_value());
    ASSERT_TRUE(b.stats.has_value());
    EXPECT_LT(a.stats->accel_cycles, b.stats->accel_cycles)
        << "pipelining should overlap iterations";
    EXPECT_TRUE(sameMemory(a.memory, b.memory));
}

TEST(AccelFeatures, VectorizationReducesPortPressure)
{
    // hotspot's three t[] loads share a base register.
    const Kernel kernel = kernelByName("hotspot", {512});
    MesaParams with = baseParams();
    with.enable_tiling = false;
    with.enable_pipelining = false;
    MesaParams without = with;
    without.enable_vectorization = false;

    const OffloadRun a = runWithOffload(kernel, with);
    const OffloadRun b = runWithOffload(kernel, without);
    ASSERT_TRUE(a.stats && b.stats);
    // The wide access couples member completion to the leader, so
    // allow a small latency wobble; throughput must stay comparable
    // while the results remain bit-identical.
    EXPECT_LE(double(a.stats->accel_cycles),
              double(b.stats->accel_cycles) * 1.10);
    EXPECT_TRUE(sameMemory(a.memory, b.memory));
}

TEST(AccelFeatures, IdealMemoryNeverSlower)
{
    const Kernel kernel = kernelByName("nn", {512});
    MesaParams normal = baseParams();
    MesaParams ideal = normal;
    ideal.accel.ideal_memory = true;

    const OffloadRun a = runWithOffload(kernel, ideal);
    const OffloadRun b = runWithOffload(kernel, normal);
    ASSERT_TRUE(a.stats && b.stats);
    EXPECT_LE(a.stats->accel_cycles, b.stats->accel_cycles);
}

TEST(AccelFeatures, EpochRunResumesCorrectly)
{
    // Run a kernel in small epochs (profiling mode) and confirm the
    // final memory still matches the golden model exactly.
    const Kernel kernel = kernelByName("gaussian", {300});
    MesaParams params = baseParams();
    params.enable_tiling = false;
    params.enable_pipelining = false;

    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);
    core::MesaController mesa(params, memory);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());

    // Three partial runs then completion.
    uint64_t total_iters = 0;
    for (int i = 0; i < 3; ++i) {
        auto os = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                                   false, 64);
        ASSERT_TRUE(os.has_value());
        total_iters += os->accel_iterations;
    }
    auto final_os =
        mesa.offloadLoop(kernel.loopBody(), emu.state(), false);
    ASSERT_TRUE(final_os.has_value());
    total_iters += final_os->accel_iterations;
    EXPECT_EQ(total_iters, kernel.iterations);

    emu.run(10'000'000);
    const GoldenResult want = runReference(kernel);
    EXPECT_TRUE(sameMemory(memory.snapshot(), want.memory));
    EXPECT_EQ(emu.state(), want.state);
}

TEST(AccelFeatures, MeasuredCountersPopulated)
{
    const Kernel kernel = kernelByName("nn", {256});
    MesaParams params = baseParams();
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);
    core::MesaController mesa(params, memory);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    auto os = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                               kernel.parallel);
    ASSERT_TRUE(os.has_value());

    auto &accel = mesa.accelerator();
    // The loads' measured latency reflects real memory behaviour.
    const auto body = kernel.loopBody();
    bool saw_load_latency = false;
    for (size_t i = 0; i < body.size(); ++i) {
        if (body[i].isLoad()) {
            const double lat = accel.measuredNodeLatency(int(i));
            EXPECT_GT(lat, 0.0);
            saw_load_latency = true;
        }
    }
    EXPECT_TRUE(saw_load_latency);
    // Edge counters exist for dependent nodes.
    bool saw_edge = false;
    for (size_t i = 0; i < body.size(); ++i)
        if (accel.measuredEdgeLatency(int(i), 0) >= 0.0)
            saw_edge = true;
    EXPECT_TRUE(saw_edge);
}

} // namespace
