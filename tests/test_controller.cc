/**
 * @file
 * MESA controller end-to-end tests: the transparent flow of paper
 * §5.1 (monitor -> encode -> map -> configure -> offload -> resume),
 * configuration-cost accounting (Table 2 range), config-cache reuse,
 * iterative optimization, and functional equivalence of the whole
 * transparent run against the pure emulator.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "helpers.hh"

namespace
{

using namespace mesa;
using namespace mesa::test;
using core::MesaController;
using core::MesaParams;
using core::TransparentRunResult;
using workloads::Kernel;
using workloads::kernelByName;

TransparentRunResult
transparent(const Kernel &kernel, const MesaParams &params,
            mem::MainMemory &memory)
{
    kernel.init_data(memory);
    MesaController mesa(params, memory);
    return mesa.runTransparent(kernel.program, kernel.fullRange(),
                               kernel.parallel);
}

TEST(Controller, TransparentOffloadHappensAndMatchesGolden)
{
    const Kernel kernel = kernelByName("nn", {2048});
    const GoldenResult want = runReference(kernel);

    mem::MainMemory memory;
    MesaParams params;
    const TransparentRunResult res =
        transparent(kernel, params, memory);

    EXPECT_TRUE(res.halted);
    ASSERT_EQ(res.offloads.size(), 1u);
    const auto &os = res.offloads.front();
    EXPECT_EQ(os.region_start, kernel.loop_start);
    EXPECT_GT(os.accel_iterations, 1500u)
        << "most iterations should run on the accelerator";
    EXPECT_GT(os.cpu_overlap_iterations, 0u)
        << "the CPU must cover iterations while MESA configures";

    EXPECT_TRUE(sameMemory(memory.snapshot(), want.memory));
    EXPECT_EQ(res.final_state.pc, want.state.pc);
}

TEST(Controller, ConfigLatencyInPaperRange)
{
    // Table 2: MESA config time is 10^3..10^4 cycles (ns-us @ 2GHz).
    for (const char *name : {"nn", "kmeans", "cfd", "srad"}) {
        const Kernel kernel = kernelByName(name, {2048});
        mem::MainMemory memory;
        MesaParams params;
        const TransparentRunResult res =
            transparent(kernel, params, memory);
        ASSERT_FALSE(res.offloads.empty()) << name;
        const uint64_t cfg = res.offloads.front().totalConfigCycles();
        EXPECT_GE(cfg, 100u) << name;
        EXPECT_LE(cfg, 10000u) << name;
        // Sub-microsecond at 2 GHz.
        MesaController mesa(params, memory);
        EXPECT_LT(mesa.cyclesToNs(cfg), 5000.0) << name;
    }
}

TEST(Controller, UnsupportedKernelNeverOffloads)
{
    const Kernel kernel = kernelByName("b+tree", {256});
    const GoldenResult want = runReference(kernel);

    mem::MainMemory memory;
    MesaParams params;
    const TransparentRunResult res =
        transparent(kernel, params, memory);

    EXPECT_TRUE(res.halted);
    EXPECT_TRUE(res.offloads.empty());
    EXPECT_FALSE(res.rejections.empty());
    // The CPU still produces the right answer.
    EXPECT_TRUE(sameMemory(memory.snapshot(), want.memory));
    EXPECT_EQ(res.final_state, want.state);
}

TEST(Controller, ConfigCacheHitsOnReencounter)
{
    const Kernel kernel = kernelByName("gaussian", {512});
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);
    MesaParams params;
    MesaController mesa(params, memory);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());

    auto first = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                                  kernel.parallel);
    ASSERT_TRUE(first.has_value());
    EXPECT_FALSE(first->config_cache_hit);
    EXPECT_GT(first->mapping_cycles, 0u);

    // Re-encounter (fresh iteration space).
    kernel.fullRange()(emu.state());
    auto second = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                                   kernel.parallel);
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->config_cache_hit);
    EXPECT_EQ(second->mapping_cycles, 0u)
        << "cached config skips the imap pass";
    EXPECT_GT(second->config_cycles, 0u)
        << "the bitstream still has to be streamed in";
}

TEST(Controller, IterativeOptimizationImprovesModel)
{
    // lud has a DRAM-heavy strided load; the first mapping uses the
    // default 4-cycle load estimate, so profiling must raise the node
    // weight and can trigger a data-driven remap.
    const Kernel kernel = kernelByName("lud", {2048});
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    MesaParams params;
    params.iterative_optimization = true;
    params.profile_epoch_iterations = 64;
    MesaController mesa(params, memory);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    auto os = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                               kernel.parallel);
    ASSERT_TRUE(os.has_value());
    // After feedback the model reflects measured memory latency.
    EXPECT_GT(os->model_latency, 10.0)
        << "refined model should include measured AMAT";

    // Functional result still exact.
    emu.run(10'000'000);
    const GoldenResult want = runReference(kernel);
    EXPECT_TRUE(sameMemory(memory.snapshot(), want.memory));
}

TEST(Controller, ReconfigurationCostAccounted)
{
    const Kernel kernel = kernelByName("lud", {4096});
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    MesaParams params;
    params.iterative_optimization = true;
    params.profile_epoch_iterations = 32;
    params.max_reconfigs = 3;
    MesaController mesa(params, memory);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    auto os = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                               kernel.parallel);
    ASSERT_TRUE(os.has_value());
    if (os->reconfigurations > 0) {
        EXPECT_GT(os->reconfig_cycles, 0u);
    }
    EXPECT_LE(os->reconfigurations, params.max_reconfigs);
}

TEST(Controller, TransparentSuiteEquivalence)
{
    // Every supported kernel, full transparent flow, must end with
    // golden memory. (Smaller scale keeps the test fast.)
    for (const char *name :
         {"kmeans", "hotspot", "cfd", "pathfinder", "backprop"}) {
        const Kernel kernel = kernelByName(name, {1024});
        const GoldenResult want = runReference(kernel);
        mem::MainMemory memory;
        MesaParams params;
        const TransparentRunResult res =
            transparent(kernel, params, memory);
        EXPECT_TRUE(res.halted) << name;
        EXPECT_FALSE(res.offloads.empty()) << name;
        EXPECT_TRUE(sameMemory(memory.snapshot(), want.memory))
            << name;
    }
}

TEST(Controller, StatsDumpCoversTheRun)
{
    const Kernel kernel = kernelByName("hotspot", {2048});
    mem::MainMemory memory;
    MesaParams params;
    const TransparentRunResult res =
        transparent(kernel, params, memory);
    ASSERT_FALSE(res.offloads.empty());

    const auto stats = res.toStats("run");
    EXPECT_DOUBLE_EQ(stats.get("total_cycles"),
                     double(res.total_cycles));
    EXPECT_DOUBLE_EQ(stats.get("offloads"), 1.0);
    EXPECT_GT(stats.get("offload0.iterations"), 1000.0);
    EXPECT_GT(stats.get("offload0.config_cycles"), 0.0);
    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("run.offload0.tiles"), std::string::npos);
}

TEST(Controller, TotalCyclesComposeCpuAndAccel)
{
    const Kernel kernel = kernelByName("nn", {2048});
    mem::MainMemory memory;
    MesaParams params;
    const TransparentRunResult res =
        transparent(kernel, params, memory);
    ASSERT_FALSE(res.offloads.empty());
    EXPECT_EQ(res.total_cycles, res.cpu_cycles + res.accel_cycles);
    EXPECT_GT(res.cpu_cycles, 0u);
    EXPECT_GT(res.accel_cycles, 0u);
}

} // namespace
