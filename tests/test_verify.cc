/**
 * @file
 * Negative tests for the static verifier (src/verify): hand-corrupt
 * each of the pipeline's three artifacts — the LDFG, the mapping, the
 * accelerator configuration — and assert that the matching rule (and
 * only error-severity rules) fires. The positive case (the intact
 * pipeline is clean) anchors every corruption against the same
 * baseline, so a test failing "clean" means the corruption helper
 * broke, not the verifier.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "interconnect/interconnect.hh"
#include "mesa/config_builder.hh"
#include "mesa/mapper.hh"
#include "riscv/assembler.hh"
#include "util/json.hh"
#include "verify/verifier.hh"

namespace
{

using namespace mesa;
using namespace mesa::riscv::reg;
using riscv::Assembler;

std::string
render(const verify::Report &report)
{
    std::ostringstream os;
    report.printTable(os);
    return os.str();
}

/**
 * One intact trip through the pipeline for a small loop exercising a
 * guard (forward branch), a guarded first-write, FP, and memory ops:
 *
 *   loop: lw   t0, 0(a0)
 *         bne  t0, zero, join
 *         add  t1, a3, a4      # guarded; t1 first written here
 *   join: add  t2, t0, a3
 *         fadd.s ft0, fa0, fa1
 *         sw   t2, 0(a1)
 *         addi a0, a0, 4
 *         blt  a0, a2, loop
 */
struct Pipeline
{
    accel::AccelParams accel = accel::AccelParams::m64();
    ic::AccelNocInterconnect noc{accel.rows, accel.cols,
                                 accel.noc_slice_width};
    std::vector<riscv::Instruction> body;
    dfg::Ldfg ldfg;
    core::MapResult map;
    accel::AcceleratorConfig config;

    Pipeline()
    {
        Assembler as;
        as.label("loop");
        as.lw(t0, 0, a0);
        as.bne(t0, zero, "join");
        as.add(t1, a3, a4);
        as.label("join");
        as.add(t2, t0, a3);
        as.fadd_s(ft0, fa0, fa1);
        as.sw(t2, 0, a1);
        as.addi(a0, a0, 4);
        as.blt(a0, a2, "loop");
        as.label("exit");
        as.ecall();
        const auto program = as.assemble();
        const uint32_t start = program.labelPc("loop");
        const uint32_t end = program.labelPc("exit");
        for (const auto &inst : program.decodeAll())
            if (inst.pc >= start && inst.pc < end)
                body.push_back(inst);

        ldfg = *dfg::Ldfg::build(body, accel.op_latency,
                                 accel.capacity());
        core::InstructionMapper mapper(accel, noc, {});
        map = mapper.map(ldfg);
        core::ConfigOptions options;
        options.pipelined = true;
        core::ConfigBlock config_block(accel);
        config = config_block.build(ldfg, map.sdfg, options, start,
                                    end);
    }

    verify::Report dfgReport() const
    {
        return verify::verifyLdfg(ldfg, accel.op_latency);
    }
    verify::Report mapReport() const
    {
        return verify::verifyMapping(ldfg, map.sdfg, map.unmapped,
                                     accel, noc);
    }
    verify::Report cfgReport() const
    {
        return verify::verifyConfig(ldfg, config, accel);
    }

    /** Node id of the first node satisfying @p pred. */
    template <typename Pred>
    dfg::NodeId
    find(Pred pred) const
    {
        for (size_t i = 0; i < ldfg.size(); ++i)
            if (pred(ldfg.node(dfg::NodeId(i))))
                return dfg::NodeId(i);
        return dfg::NoNode;
    }
};

TEST(Verify, IntactPipelineIsClean)
{
    Pipeline p;
    ASSERT_EQ(p.map.unmapped.size(), 0u);
    verify::Report report = p.dfgReport();
    report.merge(p.mapReport());
    report.merge(p.cfgReport());
    EXPECT_EQ(report.errorCount(), 0u) << render(report);
}

TEST(Verify, RuleCatalogCoversAllPasses)
{
    size_t dfg_rules = 0, map_rules = 0, cfg_rules = 0;
    for (const auto &rule : verify::ruleCatalog()) {
        if (std::string(rule.pass) == "dfg")
            ++dfg_rules;
        else if (std::string(rule.pass) == "map")
            ++map_rules;
        else if (std::string(rule.pass) == "cfg")
            ++cfg_rules;
    }
    EXPECT_GE(dfg_rules, 5u);
    EXPECT_GE(map_rules, 5u);
    EXPECT_GE(cfg_rules, 10u);
}

// --------------------------------------------------------------------
// Pass 1: corrupt the LDFG.
// --------------------------------------------------------------------

TEST(VerifyDfg, NodeIdMismatchFires)
{
    Pipeline p;
    p.ldfg.node(2).id = 5;
    const auto report = p.dfgReport();
    EXPECT_TRUE(report.hasRule("dfg.node-id")) << render(report);
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(VerifyDfg, ForwardEdgeFires)
{
    Pipeline p;
    // src1 referencing a later node breaks acyclicity.
    const dfg::NodeId consumer = p.find([](const dfg::LdfgNode &n) {
        return n.src1 != dfg::NoNode;
    });
    ASSERT_NE(consumer, dfg::NoNode);
    p.ldfg.node(consumer).src1 = dfg::NodeId(p.ldfg.size()) - 1;
    const auto report = p.dfgReport();
    EXPECT_TRUE(report.hasRule("dfg.edge-order")) << render(report);
}

TEST(VerifyDfg, RenameDisagreementFires)
{
    Pipeline p;
    // "add t2, t0, a3": rewire its t0 operand away from the load.
    const dfg::NodeId consumer = p.find([](const dfg::LdfgNode &n) {
        return n.src1 != dfg::NoNode;
    });
    ASSERT_NE(consumer, dfg::NoNode);
    p.ldfg.node(consumer).src1 = dfg::NoNode;
    p.ldfg.node(consumer).live_in1 = 99;
    const auto report = p.dfgReport();
    EXPECT_TRUE(report.hasRule("dfg.rename")) << render(report);
}

TEST(VerifyDfg, GuardFromNonBranchFires)
{
    Pipeline p;
    const dfg::NodeId guarded = p.find([](const dfg::LdfgNode &n) {
        return n.isGuarded();
    });
    ASSERT_NE(guarded, dfg::NoNode);
    // Node 0 is the load, not a forward branch.
    p.ldfg.node(guarded).guards = {0};
    const auto report = p.dfgReport();
    EXPECT_TRUE(report.hasRule("dfg.guard-branch")) << render(report);
}

TEST(VerifyDfg, DroppedGuardFires)
{
    Pipeline p;
    const dfg::NodeId guarded = p.find([](const dfg::LdfgNode &n) {
        return n.isGuarded();
    });
    ASSERT_NE(guarded, dfg::NoNode);
    p.ldfg.node(guarded).guards.clear();
    const auto report = p.dfgReport();
    EXPECT_TRUE(report.hasRule("dfg.guard-set")) << render(report);
}

TEST(VerifyDfg, MissingConsumerEntryFires)
{
    Pipeline p;
    const dfg::NodeId producer = p.find([](const dfg::LdfgNode &n) {
        return !n.consumers.empty();
    });
    ASSERT_NE(producer, dfg::NoNode);
    p.ldfg.node(producer).consumers.clear();
    const auto report = p.dfgReport();
    EXPECT_TRUE(report.hasRule("dfg.consumer")) << render(report);
}

TEST(VerifyDfg, NonPositiveLatencyFires)
{
    Pipeline p;
    p.ldfg.node(2).op_latency = 0.0;
    const auto report = p.dfgReport();
    EXPECT_TRUE(report.hasRule("dfg.latency")) << render(report);
}

TEST(VerifyDfg, GrossLatencySkewNotes)
{
    Pipeline p;
    p.ldfg.node(2).op_latency = 5000.0;
    const auto report = p.dfgReport();
    EXPECT_TRUE(report.hasRule("dfg.latency-skew")) << render(report);
    // A note, not an error: the gate would still pass this region.
    EXPECT_EQ(report.errorCount(), 0u);
}

// --------------------------------------------------------------------
// Pass 2: corrupt the mapping.
// --------------------------------------------------------------------

TEST(VerifyMap, DuplicatePeFires)
{
    Pipeline p;
    // Stack node 0 onto node 1's PE.
    p.map.sdfg.placeUnchecked(0, p.map.sdfg.coordOf(1));
    const auto report = p.mapReport();
    EXPECT_TRUE(report.hasRule("map.duplicate-pe")) << render(report);
}

TEST(VerifyMap, OutOfBoundsCoordFires)
{
    Pipeline p;
    p.map.sdfg.placeUnchecked(0, {p.accel.rows + 3, 0});
    const auto report = p.mapReport();
    EXPECT_TRUE(report.hasRule("map.out-of-bounds")) << render(report);
}

TEST(VerifyMap, GridTableDisagreementFires)
{
    Pipeline p;
    // Point node 0's placement at node 1's cell, then remove node 1:
    // the cell empties while node 0's table entry still claims it.
    const ic::Coord cell = p.map.sdfg.coordOf(1);
    p.map.sdfg.placeUnchecked(0, cell);
    p.map.sdfg.remove(1);
    auto unmapped = p.map.unmapped;
    unmapped.push_back(1);
    const auto report = verify::verifyMapping(
        p.ldfg, p.map.sdfg, unmapped, p.accel, p.noc);
    EXPECT_TRUE(report.hasRule("map.grid-mismatch")) << render(report);
}

TEST(VerifyMap, UnplacedNodeNotListedFires)
{
    Pipeline p;
    p.map.sdfg.remove(2);
    const auto report = p.mapReport();
    EXPECT_TRUE(report.hasRule("map.unplaced")) << render(report);
}

TEST(VerifyMap, PlacedNodeListedUnmappedFires)
{
    Pipeline p;
    auto unmapped = p.map.unmapped;
    unmapped.push_back(2); // node 2 is placed
    const auto report = verify::verifyMapping(
        p.ldfg, p.map.sdfg, unmapped, p.accel, p.noc);
    EXPECT_TRUE(report.hasRule("map.unmapped-list")) << render(report);
}

TEST(VerifyMap, FpOnIntegerColumnFires)
{
    Pipeline p;
    const dfg::NodeId fp = p.find([](const dfg::LdfgNode &n) {
        return n.inst.cls() == riscv::OpClass::FpAlu;
    });
    ASSERT_NE(fp, dfg::NoNode);
    // FP support is striped over even columns; column 1 has none.
    p.map.sdfg.remove(fp);
    ic::Coord odd{-1, -1};
    for (int r = 0; r < p.accel.rows && !odd.valid(); ++r)
        if (p.map.sdfg.isFree({r, 1}))
            odd = {r, 1};
    ASSERT_TRUE(odd.valid());
    p.map.sdfg.placeUnchecked(fp, odd);
    const auto report = p.mapReport();
    EXPECT_TRUE(report.hasRule("map.op-support")) << render(report);
}

TEST(VerifyMap, FallbackPressureWarns)
{
    Pipeline p;
    auto unmapped = p.map.unmapped;
    // Push a third of the graph onto the fallback bus.
    for (dfg::NodeId id = 0; id < dfg::NodeId(p.ldfg.size() / 3) + 1;
         ++id) {
        p.map.sdfg.remove(id);
        unmapped.push_back(id);
    }
    const auto report = verify::verifyMapping(
        p.ldfg, p.map.sdfg, unmapped, p.accel, p.noc);
    EXPECT_TRUE(report.hasRule("map.fallback-threshold"))
        << render(report);
    EXPECT_EQ(report.errorCount(), 0u) << render(report);
}

// --------------------------------------------------------------------
// Pass 3: corrupt the configuration.
// --------------------------------------------------------------------

TEST(VerifyCfg, DanglingSrcNodeFires)
{
    Pipeline p;
    const dfg::NodeId consumer = p.find([](const dfg::LdfgNode &n) {
        return n.src1 != dfg::NoNode;
    });
    ASSERT_NE(consumer, dfg::NoNode);
    p.config.slots[size_t(consumer)].src1 =
        dfg::NodeId(p.config.slots.size()) + 7;
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.src-dangling")) << render(report);
}

TEST(VerifyCfg, BrokenGuardRefFires)
{
    Pipeline p;
    const dfg::NodeId guarded = p.find([](const dfg::LdfgNode &n) {
        return n.isGuarded();
    });
    ASSERT_NE(guarded, dfg::NoNode);
    // The load (node 0) is not a forward branch.
    p.config.slots[size_t(guarded)].guards = {0};
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.guard-ref")) << render(report);
}

TEST(VerifyCfg, GuardSetMismatchFires)
{
    Pipeline p;
    const dfg::NodeId guarded = p.find([](const dfg::LdfgNode &n) {
        return n.isGuarded();
    });
    ASSERT_NE(guarded, dfg::NoNode);
    p.config.slots[size_t(guarded)].guards.clear();
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.guard-mismatch")) << render(report);
}

TEST(VerifyCfg, EdgeRewireFires)
{
    Pipeline p;
    const dfg::NodeId consumer = p.find([](const dfg::LdfgNode &n) {
        return n.src1 != dfg::NoNode;
    });
    ASSERT_NE(consumer, dfg::NoNode);
    p.config.slots[size_t(consumer)].src1 = dfg::NoNode;
    p.config.slots[size_t(consumer)].live_in1 = 17;
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.edge-mismatch")) << render(report);
}

TEST(VerifyCfg, SlotOrderViolationFires)
{
    Pipeline p;
    std::swap(p.config.slots[1], p.config.slots[2]);
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.slot-order")) << render(report);
}

TEST(VerifyCfg, MissingSlotFires)
{
    Pipeline p;
    p.config.slots.pop_back();
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.slot-count")) << render(report);
}

TEST(VerifyCfg, InstructionSubstitutionFires)
{
    Pipeline p;
    p.config.slots[2].inst = p.config.slots[0].inst;
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.inst-mismatch")) << render(report);
}

TEST(VerifyCfg, DroppedLiveInFires)
{
    Pipeline p;
    ASSERT_FALSE(p.config.live_ins.empty());
    p.config.live_ins.erase(p.config.live_ins.begin());
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.live-ins")) << render(report);
}

TEST(VerifyCfg, WrongLiveOutWriterFires)
{
    Pipeline p;
    ASSERT_FALSE(p.config.live_outs.empty());
    // The closing backward branch writes no register at all.
    p.config.live_outs.begin()->second =
        dfg::NodeId(p.config.slots.size()) - 1;
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.live-outs")) << render(report);
}

TEST(VerifyCfg, ForwardFromNonStoreFires)
{
    Pipeline p;
    const dfg::NodeId load = p.find([](const dfg::LdfgNode &n) {
        return n.inst.isLoad();
    });
    ASSERT_NE(load, dfg::NoNode);
    // Forward-annotate the load... from itself (not an earlier store).
    p.config.slots[size_t(load)].forward_from_store = load;
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.forward-ref")) << render(report);
}

TEST(VerifyCfg, LeaderlessVectorGroupFires)
{
    Pipeline p;
    const dfg::NodeId load = p.find([](const dfg::LdfgNode &n) {
        return n.inst.isLoad();
    });
    ASSERT_NE(load, dfg::NoNode);
    p.config.slots[size_t(load)].vector_group = 0;
    p.config.slots[size_t(load)].vector_leader = false;
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.vector-group")) << render(report);
}

TEST(VerifyCfg, ZeroStridePrefetchWarns)
{
    Pipeline p;
    const dfg::NodeId load = p.find([](const dfg::LdfgNode &n) {
        return n.inst.isLoad();
    });
    ASSERT_NE(load, dfg::NoNode);
    p.config.slots[size_t(load)].prefetch = true;
    p.config.slots[size_t(load)].prefetch_stride = 0;
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.prefetch")) << render(report);
    EXPECT_EQ(report.errorCount(), 0u) << render(report);
}

TEST(VerifyCfg, SlotOutsideGridFires)
{
    Pipeline p;
    p.config.slots[2].pos = {p.config.rows + 2, 0};
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.slot-bounds")) << render(report);
}

TEST(VerifyCfg, PeOvercommitFires)
{
    Pipeline p;
    // Two slots on one PE with time_multiplex == 1.
    p.config.slots[2].pos = p.config.slots[3].pos;
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.pe-overcommit")) << render(report);
}

TEST(VerifyCfg, TileOutsideGridFires)
{
    Pipeline p;
    ASSERT_FALSE(p.config.instances.empty());
    p.config.instances[0].origin = {p.accel.rows, 0};
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.tile-bounds")) << render(report);
}

TEST(VerifyCfg, OverlappingTilesFire)
{
    Pipeline p;
    // A second instance at the same origin overlaps the first.
    p.config.instances.push_back(p.config.instances.front());
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.tile-overlap")) << render(report);
}

TEST(VerifyCfg, UnknownTileRegOffsetWarns)
{
    Pipeline p;
    p.config.instances[0].reg_offsets[63] = 16; // not a live-in
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.tile-regs")) << render(report);
    EXPECT_EQ(report.errorCount(), 0u) << render(report);
}

TEST(VerifyCfg, BogusInductionUpdateFires)
{
    Pipeline p;
    dfg::InductionReg ind;
    ind.unified_reg = 10; // a0
    ind.update_node = 0;  // the load does not write a0
    ind.step = 4;
    p.config.inductions.push_back(ind);
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.induction-ref")) << render(report);
}

TEST(VerifyCfg, DanglingImmOverrideFires)
{
    Pipeline p;
    p.config.imm_overrides[dfg::NodeId(p.config.slots.size()) + 3] = 8;
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.imm-override-ref"))
        << render(report);
}

TEST(VerifyCfg, DegenerateGridFires)
{
    Pipeline p;
    p.config.rows = 0;
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.grid-shape")) << render(report);
}

TEST(VerifyCfg, EmptyRegionRangeWarns)
{
    Pipeline p;
    p.config.region_end = p.config.region_start;
    const auto report = p.cfgReport();
    EXPECT_TRUE(report.hasRule("cfg.region")) << render(report);
}

// --------------------------------------------------------------------
// Report plumbing.
// --------------------------------------------------------------------

TEST(VerifyReport, JsonAndCountsRoundTrip)
{
    Pipeline p;
    p.ldfg.node(2).op_latency = 0.0;
    p.map.sdfg.placeUnchecked(0, p.map.sdfg.coordOf(1));
    verify::Report report = p.dfgReport();
    report.merge(p.mapReport());
    EXPECT_GE(report.errorCount(), 2u);
    EXPECT_FALSE(report.clean());

    const auto counts = report.countsByRule();
    EXPECT_GE(counts.at("dfg.latency"), 1u);
    EXPECT_GE(counts.at("map.duplicate-pe"), 1u);

    JsonWriter w;
    report.toJson(w);
    const std::string json = w.str();
    EXPECT_NE(json.find("\"dfg.latency\""), std::string::npos);
    EXPECT_NE(json.find("\"errors\":"), std::string::npos);
}

// ---------------------------------------------------------------------
// Rule catalog: completeness against the source tree and pattern
// expansion (mesa_lint --rules).
// ---------------------------------------------------------------------

/** Every rule id passed to Report::error/warn/note in @p dir. */
std::set<std::string>
emittedRuleIds(const std::filesystem::path &dir)
{
    std::set<std::string> ids;
    // Calls may break the line between the method name and the rule
    // string, so match across whitespace on the whole file text.
    const std::regex call(R"((error|warn|note)\(\s*"([^"]+)\")");
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        const auto path = entry.path();
        if (path.extension() != ".cc" && path.extension() != ".hh")
            continue;
        std::ifstream in(path);
        std::stringstream buf;
        buf << in.rdbuf();
        const std::string text = buf.str();
        for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                            call);
             it != std::sregex_iterator(); ++it)
            ids.insert((*it)[2].str());
    }
    return ids;
}

TEST(VerifyCatalog, CoversEveryEmittedRule)
{
    std::set<std::string> catalog;
    for (const auto &info : verify::ruleCatalog()) {
        EXPECT_TRUE(catalog.insert(info.id).second)
            << "duplicate catalog id " << info.id;
        EXPECT_NE(std::string(info.summary), "")
            << "empty summary for " << info.id;
        EXPECT_NE(std::string(info.pass), "")
            << "empty pass for " << info.id;
    }

    const std::filesystem::path src(MESA_SOURCE_DIR);
    std::set<std::string> emitted = emittedRuleIds(src / "src/verify");
    for (const auto &id : emittedRuleIds(src / "src/absint"))
        emitted.insert(id);
    ASSERT_FALSE(emitted.empty())
        << "source scan found no rule emissions — pattern rot?";
    for (const auto &id : emitted)
        EXPECT_TRUE(catalog.count(id))
            << "rule " << id
            << " is emitted but missing from ruleCatalog()";
}

TEST(VerifyCatalog, ExpandRulePatterns)
{
    // Exact ids pass through; result follows catalog order.
    std::vector<std::string> unknown;
    auto ids =
        verify::expandRulePatterns("AI101,dfg.latency", &unknown);
    EXPECT_TRUE(unknown.empty());
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], "dfg.latency"); // Catalog order, not spec order.
    EXPECT_EQ(ids[1], "AI101");

    // Prefix glob: AI* covers the whole absint family.
    ids = verify::expandRulePatterns("AI*", &unknown);
    EXPECT_TRUE(unknown.empty());
    ASSERT_EQ(ids.size(), 6u);
    for (const auto &id : ids)
        EXPECT_EQ(id.rfind("AI", 0), 0u) << id;

    // Pass-prefix glob over the dotted families.
    ids = verify::expandRulePatterns("dfg.*", &unknown);
    EXPECT_TRUE(unknown.empty());
    EXPECT_GE(ids.size(), 3u);
    for (const auto &id : ids)
        EXPECT_EQ(id.rfind("dfg.", 0), 0u) << id;

    // Duplicates collapse; spaces are tolerated.
    ids = verify::expandRulePatterns(" AI101 , AI1* ", &unknown);
    EXPECT_TRUE(unknown.empty());
    EXPECT_EQ(ids.size(), 6u);

    // Unknown ids and non-matching globs are reported, matches kept.
    ids = verify::expandRulePatterns("ZZ999,ZZ*,AI101", &unknown);
    ASSERT_EQ(unknown.size(), 2u);
    EXPECT_EQ(unknown[0], "ZZ999");
    EXPECT_EQ(unknown[1], "ZZ*");
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], "AI101");
}

} // namespace
