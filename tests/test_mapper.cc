/**
 * @file
 * Instruction-mapper tests (Algorithm 1): placement validity, F_op
 * compatibility, local latency optimality within the candidate
 * window, tie-breaking, fallback handling, and imap FSM accounting.
 */

#include <gtest/gtest.h>

#include "accel/params.hh"
#include "dfg/latency.hh"
#include "mesa/mapper.hh"
#include "riscv/assembler.hh"
#include "workloads/kernel.hh"

namespace
{

using namespace mesa;
using namespace mesa::core;
using namespace mesa::dfg;
using namespace mesa::riscv;
using namespace mesa::riscv::reg;

std::vector<Instruction>
loopBody(const Assembler &as)
{
    const Program prog = as.assemble();
    const uint32_t lo = prog.labelPc("loop");
    std::vector<Instruction> body;
    for (const auto &inst : prog.decodeAll())
        if (inst.pc >= lo && inst.op != Op::Ecall)
            body.push_back(inst);
    return body;
}

Ldfg
buildOrDie(const std::vector<Instruction> &body)
{
    BuildError err;
    auto g = Ldfg::build(body, {}, 0, &err);
    EXPECT_TRUE(g.has_value()) << buildErrorName(err);
    return std::move(*g);
}

class MapperFixture : public ::testing::Test
{
  protected:
    accel::AccelParams accel_ = accel::AccelParams::m128();
    ic::AccelNocInterconnect ic_{accel_.rows, accel_.cols, 4};
    InstructionMapper mapper_{accel_, ic_};
};

TEST_F(MapperFixture, EveryNodeGetsAValidExclusivePosition)
{
    const auto kernel = workloads::makeNn(128);
    const Ldfg g = buildOrDie(kernel.loopBody());
    const MapResult res = mapper_.map(g);

    EXPECT_TRUE(res.fullyMapped());
    std::set<std::pair<int, int>> used;
    for (size_t i = 0; i < g.size(); ++i) {
        const ic::Coord pos = res.sdfg.coordOf(NodeId(i));
        ASSERT_TRUE(pos.valid()) << "node " << i;
        // No time-multiplexing: exactly one instruction per PE.
        EXPECT_TRUE(used.insert({pos.r, pos.c}).second);
        // F_op: the PE must support the operation class.
        EXPECT_TRUE(accel_.supportsOp(pos, g.node(NodeId(i)).inst.cls()));
    }
}

TEST_F(MapperFixture, FpOpsLandOnFpSlices)
{
    Assembler as;
    as.label("loop");
    as.fadd_s(ft0, fa0, fa1);
    as.fmul_s(ft1, ft0, fa2);
    as.fdiv_s(ft2, ft1, fa3);
    as.addi(a0, a0, 1);
    as.blt(a0, a1, "loop");
    const Ldfg g = buildOrDie(loopBody(as));
    const MapResult res = mapper_.map(g);

    for (size_t i = 0; i < 3; ++i) {
        const ic::Coord pos = res.sdfg.coordOf(NodeId(i));
        EXPECT_EQ(pos.c % 2, 0) << "FP op not on an FP slice";
    }
}

TEST_F(MapperFixture, PlacementIsLocallyLatencyMinimal)
{
    // Verify Algorithm 1's invariant: the chosen position minimizes
    // the node's expected latency over all free, compatible positions
    // of the full grid whenever the window covered them (we check
    // against the window by re-deriving candidates).
    const auto kernel = workloads::makeHotspot(128);
    const Ldfg g = buildOrDie(kernel.loopBody());
    const MapResult res = mapper_.map(g);

    // Recompute: for each node, unplace it and confirm no *window*
    // position beats its modeled completion. We approximate by
    // checking its completion equals the model evaluation.
    LatencyModel model(g, res.sdfg, ic_, mapper_.params().fallback_bus_latency);
    const LatencyResult eval = model.evaluate();
    for (size_t i = 0; i < g.size(); ++i) {
        EXPECT_NEAR(eval.completion[i], res.completion[i], 1e-9)
            << "node " << i
            << ": incremental completion disagrees with full model";
    }
}

TEST_F(MapperFixture, ProducersPlacedNearConsumers)
{
    // The mapper should keep dependent chains close: the average
    // hop distance on dependence edges must beat random placement.
    const auto kernel = workloads::makeCfd(128);
    const Ldfg g = buildOrDie(kernel.loopBody());
    const MapResult res = mapper_.map(g);

    double total_dist = 0;
    int edges = 0;
    for (const auto &node : g.nodes()) {
        for (NodeId src : {node.src1, node.src2}) {
            if (src == NoNode)
                continue;
            total_dist += ic::manhattan(res.sdfg.coordOf(src),
                                        res.sdfg.coordOf(node.id));
            ++edges;
        }
    }
    ASSERT_GT(edges, 0);
    EXPECT_LT(total_dist / edges, 4.0)
        << "dependent instructions scattered too far";
}

TEST_F(MapperFixture, GridFullFallsBackToBus)
{
    // A 2x2 integer-only grid cannot hold 6 instructions.
    accel::AccelParams tiny;
    tiny.rows = 2;
    tiny.cols = 2;
    tiny.fp_slices = false;
    ic::AccelNocInterconnect tic(2, 2, 4);
    MapperParams mp;
    mp.cand_rows = 2;
    mp.cand_cols = 2;
    InstructionMapper mapper(tiny, tic, mp);

    Assembler as;
    as.label("loop");
    as.add(t0, a0, a1);
    as.add(t1, t0, a1);
    as.add(t2, t1, a1);
    as.add(t3, t2, a1);
    as.addi(a0, a0, 1);
    as.blt(a0, a2, "loop");
    const Ldfg g = buildOrDie(loopBody(as));
    const MapResult res = mapper.map(g);

    EXPECT_EQ(res.unmapped.size(), 2u);
    EXPECT_EQ(res.sdfg.placedCount(), 4u);
    // Unmapped nodes still get completion estimates (fallback bus).
    for (NodeId id : res.unmapped)
        EXPECT_GT(res.completion[size_t(id)], 0.0);
}

TEST_F(MapperFixture, ImapFsmCyclesScaleWithBodySize)
{
    const auto small = workloads::makeGaussian(128);
    const auto large = workloads::makeSrad(512);
    const MapResult rs = mapper_.map(buildOrDie(small.loopBody()));
    const MapResult rl = mapper_.map(buildOrDie(large.loopBody()));
    EXPECT_GT(rl.mapping_cycles, rs.mapping_cycles);
    // Hardware mapping stays in the 10^2..10^4 cycle range (Table 2).
    EXPECT_LT(rl.mapping_cycles, 10000u);
    EXPECT_GE(rs.mapping_cycles, 7u * 8u); // >= stages x instructions
}

TEST_F(MapperFixture, DataDrivenRemapReactsToWeights)
{
    // Raising a load's measured latency (memory bottleneck) must not
    // worsen the model: the remap is allowed to change placement, and
    // the model latency must track the higher node weight.
    const auto kernel = workloads::makeKmeans(128);
    Ldfg g = buildOrDie(kernel.loopBody());
    const MapResult before = mapper_.map(g);

    for (auto &node : const_cast<std::vector<LdfgNode> &>(g.nodes())) {
        (void)node;
    }
    // Pretend profiling found load 0 very slow.
    g.node(0).op_latency = 40.0;
    const MapResult after = mapper_.map(g);
    EXPECT_GE(after.model_latency, before.model_latency);
    EXPECT_TRUE(after.fullyMapped());
}

TEST(ImapFsm, StageAccounting)
{
    core::ImapFsm fsm;
    const uint32_t c1 = fsm.mapInstruction(32, 0);
    const uint32_t c2 = fsm.mapInstruction(32, 1);
    EXPECT_GT(c2, c1); // a rescan pass costs extra reduction cycles
    EXPECT_EQ(fsm.instructionsMapped(), 2u);
    EXPECT_EQ(fsm.totalCycles(), uint64_t(c1) + c2);

    const auto &trace = fsm.trace();
    ASSERT_EQ(trace.size(), 2u);
    // Constant stages are one cycle each (Fig. 8).
    EXPECT_EQ(trace[0].stage_cycles[size_t(core::ImapState::Fetch)], 1u);
    EXPECT_EQ(trace[0].stage_cycles[size_t(core::ImapState::Rename)],
              1u);
    EXPECT_EQ(
        trace[0].stage_cycles[size_t(core::ImapState::Writeback)], 1u);
    // Reduction depends on candidate count.
    EXPECT_GT(trace[0].stage_cycles[size_t(core::ImapState::Reduce)],
              1u);
}

} // namespace
