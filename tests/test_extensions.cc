/**
 * @file
 * Tests for the extensions the paper lists as future work / current
 * limitations: PE time-multiplexing (folding oversized loops onto a
 * virtual grid) and loop unrolling. Each must preserve golden-model
 * equivalence and exhibit the documented performance behaviour.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "dfg/unroll.hh"
#include "interconnect/folded.hh"

namespace
{

using namespace mesa;
using namespace mesa::test;
using core::MesaParams;
using workloads::Kernel;
using workloads::kernelByName;

TEST(FoldedInterconnect, FoldsRowsOntoPhysicalGrid)
{
    ic::AccelNocInterconnect phys(16, 8, 4);
    ic::FoldedInterconnect folded(phys, 16);

    // Virtual rows 0 and 16 are the same physical row.
    EXPECT_EQ(folded.latency({16, 0}, {0, 1}),
              phys.latency({0, 0}, {0, 1}));
    EXPECT_EQ(folded.latency({18, 3}, {35, 5}),
              phys.latency({2, 3}, {3, 5}));
    EXPECT_EQ(folded.busId({17, 0}, {20, 4}),
              phys.busId({1, 0}, {4, 4}));
    EXPECT_EQ(folded.fold({33, 2}).r, 1);
}

TEST(TimeMultiplex, SradQualifiesOnM64WithFolding)
{
    // srad's ~78-instruction body exceeds M-64's 64 PEs; with the
    // time-multiplexing extension it folds onto a virtual grid and
    // still runs bit-exact.
    const Kernel kernel = kernelByName("srad", {512});
    const GoldenResult want = runReference(kernel);

    MesaParams off;
    off.accel = accel::AccelParams::m64();
    off.iterative_optimization = false;
    {
        // Paper behaviour: C1 rejects the loop outright.
        mem::MainMemory memory;
        kernel.init_data(memory);
        cpu::loadProgram(memory, kernel.program);
        core::MesaController mesa(off, memory);
        riscv::Emulator emu(memory);
        emu.reset(kernel.program.base_pc);
        kernel.fullRange()(emu.state());
        advanceToLoop(emu, kernel);
        EXPECT_FALSE(mesa.offloadLoop(kernel.loopBody(), emu.state(),
                                      kernel.parallel)
                         .has_value());
    }

    MesaParams on = off;
    on.enable_time_multiplexing = true;
    const OffloadRun run = runWithOffload(kernel, on);
    ASSERT_TRUE(run.stats.has_value())
        << "folded mapping should qualify";
    EXPECT_EQ(run.stats->accel_iterations, kernel.iterations);
    EXPECT_TRUE(sameMemory(run.memory, want.memory));
}

TEST(TimeMultiplex, SharedPesSlowerThanPureSpatial)
{
    const Kernel kernel = kernelByName("srad", {1024});

    MesaParams folded;
    folded.accel = accel::AccelParams::m64();
    folded.enable_time_multiplexing = true;
    folded.iterative_optimization = false;
    const OffloadRun small = runWithOffload(kernel, folded);

    MesaParams spatial;
    spatial.accel = accel::AccelParams::m128();
    spatial.iterative_optimization = false;
    const OffloadRun big = runWithOffload(kernel, spatial);

    ASSERT_TRUE(small.stats && big.stats);
    // Folding time-shares PEs: per-iteration throughput must be
    // strictly worse than the purely spatial mapping on enough PEs.
    EXPECT_GT(small.stats->accel_cycles, big.stats->accel_cycles);
    EXPECT_TRUE(sameMemory(small.memory, big.memory));
}

TEST(TimeMultiplex, EquivalenceAcrossKernelsAndFolds)
{
    // Force folding even for small kernels by shrinking the array.
    for (const char *name : {"kmeans", "cfd", "pathfinder"}) {
        const Kernel kernel = kernelByName(name, {256});
        const GoldenResult want = runReference(kernel);

        MesaParams params;
        params.accel.rows = 4;
        params.accel.cols = 4; // 16 PEs: everything needs folding
        params.accel.mem_ports = 8;
        params.enable_time_multiplexing = true;
        params.max_time_multiplex = 4;
        params.iterative_optimization = false;
        const OffloadRun run = runWithOffload(kernel, params);
        ASSERT_TRUE(run.stats.has_value()) << name;
        EXPECT_TRUE(sameMemory(run.memory, want.memory)) << name;
    }
}

// ---------------------------------------------------------------------
// Loop unrolling (extension).
// ---------------------------------------------------------------------

TEST(Unroll, TransformShapeAndAdjustments)
{
    const Kernel kernel = kernelByName("gaussian", {256});
    const auto body = kernel.loopBody(); // 8 instructions, 3 inductions
    const auto unrolled = dfg::unrollBody(body, 4);
    ASSERT_TRUE(unrolled.has_value());
    // 5 replicated instructions x4 + 3 scaled updates + branch.
    EXPECT_EQ(unrolled->body.size(), 4 * 5 + 2 + 1);
    // The bound register is tightened by (f-1)*step.
    ASSERT_EQ(unrolled->live_in_adjustments.size(), 1u);
    EXPECT_EQ(unrolled->live_in_adjustments.begin()->second, -3 * 4);
    // Induction updates are scaled by the factor.
    int scaled = 0;
    for (const auto &inst : unrolled->body)
        if (inst.op == riscv::Op::Addi && inst.imm == 16)
            ++scaled;
    EXPECT_EQ(scaled, 2);
    // Still a well-formed loop body.
    EXPECT_TRUE(dfg::Ldfg::build(unrolled->body).has_value());
}

TEST(Unroll, RejectsUnsafeBodies)
{
    // bfs: forward branch (predication) -> reject.
    EXPECT_FALSE(
        dfg::unrollBody(kernelByName("bfs", {256}).loopBody(), 2)
            .has_value());
    // backprop: ends in blt but carries fa0; the induction-use test
    // passes, so it unrolls -- but a trip-dependent reduction stays
    // exact because the tail runs on the CPU. Just check it builds.
    const auto red =
        dfg::unrollBody(kernelByName("backprop", {256}).loopBody(), 2);
    EXPECT_TRUE(red.has_value());
    // Factor 1 or empty bodies are rejected.
    EXPECT_FALSE(dfg::unrollBody({}, 2).has_value());
    EXPECT_FALSE(
        dfg::unrollBody(kernelByName("nn", {64}).loopBody(), 1)
            .has_value());
}

class UnrollEquivalence : public ::testing::TestWithParam<
                              std::tuple<const char *, uint64_t>>
{
};

TEST_P(UnrollEquivalence, GoldenWithTailOnCpu)
{
    const auto [name, trip] = GetParam();
    const Kernel kernel = kernelByName(name, {trip});
    const GoldenResult want = runReference(kernel);

    MesaParams params;
    params.enable_unrolling = true;
    params.unroll_factor = 4;
    params.iterative_optimization = false;
    const OffloadRun run = runWithOffload(kernel, params);
    ASSERT_TRUE(run.stats.has_value());
    EXPECT_TRUE(sameMemory(run.memory, want.memory));
    EXPECT_EQ(run.state, want.state)
        << "CPU tail must finish the leftover iterations exactly";
}

// Trip counts chosen to exercise every tail size (0..3 for f=4).
INSTANTIATE_TEST_SUITE_P(
    TailSizes, UnrollEquivalence,
    ::testing::Values(std::tuple{"gaussian", uint64_t(256)},
                      std::tuple{"gaussian", uint64_t(257)},
                      std::tuple{"gaussian", uint64_t(258)},
                      std::tuple{"gaussian", uint64_t(259)},
                      std::tuple{"nn", uint64_t(255)},
                      std::tuple{"lud", uint64_t(253)},
                      std::tuple{"backprop", uint64_t(130)}),
    [](const auto &param_info) {
        return std::string(std::get<0>(param_info.param)) + "_" +
               std::to_string(std::get<1>(param_info.param));
    });

TEST(Unroll, ImprovesSmallLoopThroughput)
{
    // gaussian's 8-instruction body underuses even one tile; covering
    // 4 iterations per pass must not be slower.
    const Kernel kernel = kernelByName("gaussian", {4096});
    MesaParams off;
    off.iterative_optimization = false;
    off.enable_tiling = false;
    MesaParams on = off;
    on.enable_unrolling = true;
    const OffloadRun a = runWithOffload(kernel, on);
    const OffloadRun b = runWithOffload(kernel, off);
    ASSERT_TRUE(a.stats && b.stats);
    EXPECT_LT(a.stats->accel_cycles, b.stats->accel_cycles);
}

TEST(ShadowConfig, HidesReconfigurationCost)
{
    const Kernel kernel = kernelByName("nn", {4096});
    MesaParams plain;
    plain.iterative_optimization = true;
    plain.profile_epoch_iterations = 64;
    MesaParams shadow = plain;
    shadow.shadow_config = true;

    const OffloadRun a = runWithOffload(kernel, plain);
    const OffloadRun b = runWithOffload(kernel, shadow);
    ASSERT_TRUE(a.stats && b.stats);
    ASSERT_GT(a.stats->reconfigurations, 0);
    EXPECT_EQ(a.stats->reconfigurations, b.stats->reconfigurations);
    EXPECT_LT(b.stats->reconfig_cycles, a.stats->reconfig_cycles);
    // Results stay identical, only the charged cycles change.
    EXPECT_TRUE(sameMemory(a.memory, b.memory));
}

TEST(TimeMultiplex, DisabledByDefault)
{
    const Kernel kernel = kernelByName("srad", {256});
    MesaParams params;
    params.accel = accel::AccelParams::m64();
    // Default MesaParams: extension off -> C1-style rejection.
    EXPECT_FALSE(params.enable_time_multiplexing);
    const OffloadRun run = runWithOffload(kernel, params);
    EXPECT_FALSE(run.stats.has_value());
}

} // namespace
