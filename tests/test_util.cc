/**
 * @file
 * Utility-layer tests: SlotPool per-cycle capacity semantics, stats
 * primitives, the matrix helper, the text table printer, and the
 * logging error types.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "util/debug.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/matrix.hh"
#include "util/slot_pool.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace
{

using namespace mesa;

// ---------------------------------------------------------------------
// SlotPool: the per-cycle capacity model.
// ---------------------------------------------------------------------

TEST(SlotPool, CapacityPerCycle)
{
    SlotPool pool(2);
    EXPECT_EQ(pool.acquire(10), 10u);
    EXPECT_EQ(pool.acquire(10), 10u);
    EXPECT_EQ(pool.acquire(10), 11u); // third request spills over
    EXPECT_EQ(pool.acquire(10), 11u);
    EXPECT_EQ(pool.acquire(10), 12u);
}

TEST(SlotPool, FutureBookingDoesNotStarveEarlierCycles)
{
    // The bug class this type exists to prevent: a far-future booking
    // must leave earlier cycles available.
    SlotPool pool(1);
    EXPECT_EQ(pool.acquire(1000), 1000u);
    EXPECT_EQ(pool.acquire(5), 5u);
    EXPECT_EQ(pool.acquire(5), 6u);
    EXPECT_EQ(pool.acquire(999), 999u);
    EXPECT_EQ(pool.acquire(999), 1001u); // 1000 already taken
}

TEST(SlotPool, ResetClearsBookings)
{
    SlotPool pool(1);
    pool.acquire(0);
    EXPECT_EQ(pool.acquire(0), 1u);
    pool.reset();
    EXPECT_EQ(pool.acquire(0), 0u);
}

TEST(SlotPool, DenseBurstDrains)
{
    SlotPool pool(4);
    uint64_t max_cycle = 0;
    for (int i = 0; i < 100; ++i)
        max_cycle = std::max(max_cycle, pool.acquire(0));
    // 100 requests at 4/cycle need exactly 25 cycles.
    EXPECT_EQ(max_cycle, 24u);
}

TEST(SlotPool, SkipLinksMatchReferenceLinearScan)
{
    // Reference model: a plain linear scan over a used-count map.
    // The pool's full-cycle skip links must book exactly the same
    // cycles on any request pattern (bookings never release, so a
    // link can only go stale in the conservative direction).
    const unsigned capacity = 3;
    SlotPool pool(capacity);
    std::map<uint64_t, unsigned> used;
    auto reference = [&](uint64_t ready) {
        uint64_t c = ready;
        while (used[c] >= capacity)
            ++c;
        ++used[c];
        return c;
    };
    uint64_t x = 0x9e3779b97f4a7c15ull; // fixed-seed xorshift
    auto next = [&]() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    for (int i = 0; i < 5000; ++i) {
        const uint64_t ready = next() % 64;
        EXPECT_EQ(pool.acquire(ready), reference(ready));
    }
}

TEST(SlotPool, LongFullSpanStaysFast)
{
    // A runaway region held only by the watchdog books hundreds of
    // thousands of same-ready slots; the skip links keep each acquire
    // near-constant instead of walking the whole full span (which
    // made such campaigns quadratic).
    SlotPool pool(2);
    for (uint64_t i = 0; i < 200'000; ++i)
        ASSERT_EQ(pool.acquire(7), 7 + i / 2);
}

// ---------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------

TEST(Stats, CounterAndAverage)
{
    Counter c("c");
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);

    Average avg;
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
    avg.sample(2.0);
    avg.sample(4.0);
    EXPECT_DOUBLE_EQ(avg.mean(), 3.0);
    EXPECT_EQ(avg.count(), 2u);
    avg.reset();
    EXPECT_EQ(avg.count(), 0u);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    Histogram h(4, 10.0); // buckets [0,10) [10,20) [20,30) [30,40)
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(100); // overflow
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
}

TEST(Stats, HistogramNegativeSamplesUnderflow)
{
    // The bug class this guards: a negative sample cast to size_t
    // wrapped to a huge index and silently landed in overflow.
    Histogram h(4, 10.0);
    h.sample(-5.0);
    h.sample(-1000.0);
    h.sample(3.0);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_DOUBLE_EQ(h.min(), -1000.0);
    EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(Stats, HistogramTracksTrueMinMax)
{
    Histogram h(4, 10.0);
    // Before any sample, min/max read 0 (not stale extremes).
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    // All-negative samples: max must not stay at a default of 0.
    h.sample(-3.0);
    h.sample(-7.0);
    EXPECT_DOUBLE_EQ(h.min(), -7.0);
    EXPECT_DOUBLE_EQ(h.max(), -3.0);
    h.reset();
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

namespace
{

/** Exact nearest-rank quantile over a sorted sample vector. */
double
exactQuantile(std::vector<double> sorted, double q)
{
    std::sort(sorted.begin(), sorted.end());
    size_t rank = size_t(std::ceil(q * double(sorted.size())));
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

} // namespace

TEST(Stats, PercentilesMatchExactQuantilesWithinOneBucket)
{
    // Deterministic pseudo-random-ish spread across the bucket range.
    Histogram h(64, 8.0); // range [0, 512)
    std::vector<double> samples;
    for (int i = 0; i < 1000; ++i) {
        const double v = double((i * 37 + 11) % 500);
        samples.push_back(v);
        h.sample(v);
    }
    for (double q : {0.50, 0.90, 0.99, 0.999}) {
        const double exact = exactQuantile(samples, q);
        const double est = h.percentile(q);
        // The estimate is the upper edge of the containing bucket:
        // never below the exact quantile, within one width above.
        EXPECT_GE(est, exact) << "q=" << q;
        EXPECT_LE(est, exact + h.bucketWidth()) << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(h.p50(), h.percentile(0.50));
    EXPECT_DOUBLE_EQ(h.p99(), h.percentile(0.99));
    EXPECT_DOUBLE_EQ(h.p999(), h.percentile(0.999));
}

TEST(Stats, PercentileEdgeCases)
{
    Histogram empty(4, 10.0);
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

    // A single sample is every percentile.
    Histogram one(4, 10.0);
    one.sample(7.0);
    // Upper bucket edge would be 10; clamped to the true max.
    EXPECT_DOUBLE_EQ(one.p50(), 7.0);
    EXPECT_DOUBLE_EQ(one.p999(), 7.0);

    // Overflow samples report the tracked true max, underflow the
    // true min; out-of-range q is clamped.
    Histogram h(4, 10.0); // range [0, 40)
    h.sample(-5.0);
    h.sample(15.0);
    h.sample(1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), -5.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(-3.0), -5.0);
    EXPECT_DOUBLE_EQ(h.percentile(2.0), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 20.0); // Bucket [10,20) edge.
}

TEST(Stats, PercentileAllSamplesOneBucket)
{
    Histogram h(8, 100.0);
    for (int i = 0; i < 50; ++i)
        h.sample(42.0);
    // Upper edge would be 100, but the estimate clamps to the max.
    EXPECT_DOUBLE_EQ(h.p50(), 42.0);
    EXPECT_DOUBLE_EQ(h.p99(), 42.0);
}

TEST(Stats, HistogramRejectsBadGeometry)
{
    EXPECT_THROW(Histogram(4, 0.0), FatalError);
    EXPECT_THROW(Histogram(4, -1.0), FatalError);
    EXPECT_THROW(Histogram(0, 4.0), FatalError);
    EXPECT_DOUBLE_EQ(Histogram(4, 2.5).bucketWidth(), 2.5);
}

TEST(Stats, StatGroupMerge)
{
    StatGroup a("run");
    a.set("cycles", 100);
    a.set("loads", 5);
    StatGroup b("epoch");
    b.set("cycles", 50);
    b.set("stores", 3);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("cycles"), 150.0);
    EXPECT_DOUBLE_EQ(a.get("loads"), 5.0);
    EXPECT_DOUBLE_EQ(a.get("stores"), 3.0); // missing key starts at 0
    EXPECT_EQ(a.name(), "run");             // name is unaffected
}

TEST(Stats, StatGroupDump)
{
    StatGroup g("core0");
    g.set("ipc", 2.5);
    g.add("ipc", 0.5);
    g.set("cycles", 100);
    EXPECT_DOUBLE_EQ(g.get("ipc"), 3.0);
    EXPECT_TRUE(g.has("cycles"));
    EXPECT_FALSE(g.has("nope"));
    EXPECT_DOUBLE_EQ(g.get("nope"), 0.0);

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("core0.ipc 3"), std::string::npos);
    EXPECT_NE(os.str().find("core0.cycles 100"), std::string::npos);
}

// ---------------------------------------------------------------------
// Matrix.
// ---------------------------------------------------------------------

TEST(Matrix, AccessAndBounds)
{
    Matrix<int> m(3, 4, 7);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.at(2, 3), 7);
    m.at(1, 2) = 42;
    EXPECT_EQ(m(1, 2), 42);
    EXPECT_EQ(m.count(7), 11u);
    EXPECT_THROW(m.at(3, 0), PanicError);
    EXPECT_THROW(m.at(0, 4), PanicError);

    Matrix<int> same(3, 4, 7);
    same(1, 2) = 42;
    EXPECT_TRUE(m == same);
    m.fill(0);
    EXPECT_EQ(m.count(0), 12u);
}

// ---------------------------------------------------------------------
// TextTable.
// ---------------------------------------------------------------------

TEST(TextTable, AlignsColumns)
{
    TextTable t("demo");
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.row({"longer-name", "22"});
    EXPECT_EQ(t.rows(), 2u);

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Header columns align: "value" starts at the same offset in both
    // data rows (the longer name widens the first column everywhere).
    const auto line_start = out.find("x ");
    ASSERT_NE(line_start, std::string::npos);
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

// ---------------------------------------------------------------------
// JsonWriter.
// ---------------------------------------------------------------------

TEST(JsonWriter, ObjectsArraysAndEscaping)
{
    JsonWriter w;
    w.beginObject()
        .field("name", "mesa \"quoted\"")
        .field("pes", 128)
        .field("speedup", 1.5)
        .field("ok", true)
        .key("series")
        .beginArray()
        .value(uint64_t(1))
        .value(uint64_t(2))
        .value(uint64_t(3))
        .end()
        .key("nested")
        .beginObject()
        .field("x", 7)
        .end()
        .end();
    EXPECT_TRUE(w.balanced());
    const std::string out = w.str();
    EXPECT_EQ(out,
              "{\"name\":\"mesa \\\"quoted\\\"\",\"pes\":128,"
              "\"speedup\":1.5,\"ok\":true,"
              "\"series\":[1,2,3],\"nested\":{\"x\":7}}");
}

TEST(JsonWriter, AutoClosesUnbalancedScopes)
{
    JsonWriter w;
    w.beginObject().key("a").beginArray().value(1);
    EXPECT_FALSE(w.balanced());
    EXPECT_EQ(w.str(), "{\"a\":[1]}");
}

TEST(JsonWriter, ControlCharactersEscaped)
{
    JsonWriter w;
    w.beginObject().field("s", std::string("a\nb\tc")).end();
    EXPECT_EQ(w.str(), "{\"s\":\"a\\nb\\tc\"}");
}

TEST(JsonWriter, BackslashAndRawControlBytesEscaped)
{
    JsonWriter w;
    w.beginObject()
        .field("path", std::string("C:\\tmp\\x"))
        .field("ctl", std::string("a\x01"
                                  "b"))
        .end();
    EXPECT_EQ(w.str(),
              "{\"path\":\"C:\\\\tmp\\\\x\",\"ctl\":\"a\\u0001b\"}");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    JsonWriter w;
    w.beginObject()
        .field("nan", std::numeric_limits<double>::quiet_NaN())
        .field("inf", std::numeric_limits<double>::infinity())
        .field("ninf", -std::numeric_limits<double>::infinity())
        .field("ok", 1.5)
        .end();
    EXPECT_EQ(w.str(),
              "{\"nan\":null,\"inf\":null,\"ninf\":null,\"ok\":1.5}");
}

TEST(JsonWriter, StrClosesDeeplyNestedScopes)
{
    JsonWriter w;
    w.beginObject().key("a").beginObject().key("b").beginArray().value(
        1);
    EXPECT_FALSE(w.balanced());
    // str() appends the pending closers without mutating the writer.
    EXPECT_EQ(w.str(), "{\"a\":{\"b\":[1]}}");
    EXPECT_EQ(w.str(), "{\"a\":{\"b\":[1]}}");
    w.end().end().end();
    EXPECT_TRUE(w.balanced());
}

TEST(JsonWriter, EmptyContainersAndSiblingCommas)
{
    JsonWriter w;
    w.beginObject()
        .key("empty_obj").beginObject().end()
        .key("empty_arr").beginArray().end()
        .field("after", 1)
        .end();
    EXPECT_EQ(w.str(),
              "{\"empty_obj\":{},\"empty_arr\":[],\"after\":1}");
}

// ---------------------------------------------------------------------
// Debug tracing.
// ---------------------------------------------------------------------

TEST(DebugTrace, CategoriesGateOutput)
{
    std::ostringstream sink;
    Debug::setStream(&sink);
    Debug::clear();

    DTRACE("mapper", "hidden " << 1);
    EXPECT_TRUE(sink.str().empty());

    Debug::enable("mapper");
    DTRACE("mapper", "visible " << 2);
    DTRACE("engine", "still hidden");
    EXPECT_NE(sink.str().find("mapper: visible 2"), std::string::npos);
    EXPECT_EQ(sink.str().find("engine"), std::string::npos);

    Debug::enable("all");
    DTRACE("engine", "now visible");
    EXPECT_NE(sink.str().find("engine: now visible"),
              std::string::npos);

    Debug::clear();
    Debug::setStream(&std::cerr);
}

// ---------------------------------------------------------------------
// Logging.
// ---------------------------------------------------------------------

TEST(Logging, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(panic("broken ", 42), PanicError);
    EXPECT_THROW(fatal("bad config"), FatalError);
    try {
        panic("value=", 7, " end");
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value=7 end"),
                  std::string::npos);
    }
    // MESA_ASSERT passes on true, throws with context on false.
    MESA_ASSERT(1 + 1 == 2);
    EXPECT_THROW(MESA_ASSERT(false, "context"), PanicError);
}

} // namespace
