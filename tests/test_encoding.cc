/**
 * @file
 * Encoder/decoder unit tests: round-trip through real RV32IMF machine
 * words, immediate sign handling, and field extraction.
 */

#include <gtest/gtest.h>

#include "riscv/encoding.hh"

namespace
{

using namespace mesa::riscv;

Instruction
make(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2, int32_t imm,
     uint32_t pc = 0x1000)
{
    Instruction in;
    in.op = op;
    in.rd = rd;
    in.rs1 = rs1;
    in.rs2 = rs2;
    in.imm = imm;
    in.pc = pc;
    return in;
}

void
expectRoundTrip(const Instruction &in)
{
    const uint32_t word = encode(in);
    const Instruction out = decode(word, in.pc);
    EXPECT_EQ(out.op, in.op) << opName(in.op);
    if (writesDest(in.op)) {
        EXPECT_EQ(out.rd, in.rd) << opName(in.op);
    }
    if (numSources(in.op) >= 1) {
        EXPECT_EQ(out.rs1, in.rs1) << opName(in.op);
    }
    if (numSources(in.op) >= 2 && opClass(in.op) != OpClass::Load) {
        EXPECT_EQ(out.rs2, in.rs2) << opName(in.op);
    }
}

TEST(Encoding, RTypeRoundTrip)
{
    for (Op op : {Op::Add, Op::Sub, Op::Sll, Op::Slt, Op::Sltu, Op::Xor,
                  Op::Srl, Op::Sra, Op::Or, Op::And, Op::Mul, Op::Mulh,
                  Op::Mulhsu, Op::Mulhu, Op::Div, Op::Divu, Op::Rem,
                  Op::Remu}) {
        expectRoundTrip(make(op, 5, 6, 7, 0));
        expectRoundTrip(make(op, 31, 1, 31, 0));
    }
}

TEST(Encoding, ITypeImmediates)
{
    for (int32_t imm : {0, 1, -1, 2047, -2048, 100, -77}) {
        Instruction in = make(Op::Addi, 10, 11, 0, imm);
        const Instruction out = decode(encode(in), in.pc);
        EXPECT_EQ(out.imm, imm);
        EXPECT_EQ(out.op, Op::Addi);
    }
}

TEST(Encoding, ShiftImmediates)
{
    for (int32_t sh : {0, 1, 15, 31}) {
        for (Op op : {Op::Slli, Op::Srli, Op::Srai}) {
            Instruction in = make(op, 3, 4, 0, sh);
            const Instruction out = decode(encode(in), in.pc);
            EXPECT_EQ(out.op, op);
            EXPECT_EQ(out.imm, sh);
        }
    }
}

TEST(Encoding, LoadStoreOffsets)
{
    for (int32_t off : {0, 4, -4, 2044, -2048, 124}) {
        Instruction ld = make(Op::Lw, 8, 9, 0, off);
        EXPECT_EQ(decode(encode(ld), 0).imm, off);
        Instruction st = make(Op::Sw, 0, 9, 8, off);
        const Instruction out = decode(encode(st), 0);
        EXPECT_EQ(out.imm, off);
        EXPECT_EQ(out.rs1, 9);
        EXPECT_EQ(out.rs2, 8);
    }
}

TEST(Encoding, BranchOffsets)
{
    for (int32_t off : {4, -4, 8, -512, 1024, -4096, 4094 & ~1}) {
        for (Op op : {Op::Beq, Op::Bne, Op::Blt, Op::Bge, Op::Bltu,
                      Op::Bgeu}) {
            Instruction in = make(op, 0, 5, 6, off & ~1);
            const Instruction out = decode(encode(in), in.pc);
            EXPECT_EQ(out.op, op);
            EXPECT_EQ(out.imm, off & ~1);
        }
    }
}

TEST(Encoding, JalOffset)
{
    for (int32_t off : {4, -4, 2048, -2048, 1 << 19}) {
        Instruction in = make(Op::Jal, 1, 0, 0, off);
        const Instruction out = decode(encode(in), in.pc);
        EXPECT_EQ(out.op, Op::Jal);
        EXPECT_EQ(out.imm, off);
    }
}

TEST(Encoding, LuiAuipc)
{
    Instruction lui = make(Op::Lui, 7, 0, 0, int32_t(0xABCDE000));
    EXPECT_EQ(decode(encode(lui), 0).imm, int32_t(0xABCDE000));
    Instruction auipc = make(Op::Auipc, 7, 0, 0, 0x12345000);
    EXPECT_EQ(decode(encode(auipc), 0).op, Op::Auipc);
}

TEST(Encoding, FpRoundTrip)
{
    for (Op op : {Op::FaddS, Op::FsubS, Op::FmulS, Op::FdivS, Op::FminS,
                  Op::FmaxS, Op::FsgnjS, Op::FsgnjnS, Op::FsgnjxS,
                  Op::FeqS, Op::FltS, Op::FleS}) {
        expectRoundTrip(make(op, 2, 3, 4, 0));
    }
    expectRoundTrip(make(Op::FsqrtS, 2, 3, 0, 0));
    expectRoundTrip(make(Op::FmvXW, 2, 3, 0, 0));
    expectRoundTrip(make(Op::FmvWX, 2, 3, 0, 0));
    expectRoundTrip(make(Op::FcvtSW, 2, 3, 0, 0));
    expectRoundTrip(make(Op::FcvtWS, 2, 3, 0, 0));
    expectRoundTrip(make(Op::Flw, 2, 3, 0, 16));
    expectRoundTrip(make(Op::Fsw, 0, 3, 2, 16));
}

TEST(Encoding, SystemOps)
{
    EXPECT_EQ(decode(encode(make(Op::Ecall, 0, 0, 0, 0)), 0).op,
              Op::Ecall);
    EXPECT_EQ(decode(encode(make(Op::Ebreak, 0, 0, 0, 0)), 0).op,
              Op::Ebreak);
    EXPECT_EQ(decode(encode(make(Op::Fence, 0, 0, 0, 0)), 0).op,
              Op::Fence);
}

TEST(Encoding, InvalidWordDecodesToInvalid)
{
    EXPECT_EQ(decode(0x00000000u, 0).op, Op::Invalid);
    EXPECT_EQ(decode(0xFFFFFFFFu, 0).op, Op::Invalid);
}

TEST(Encoding, BackwardBranchPredicate)
{
    Instruction in = make(Op::Bne, 0, 5, 6, -16, 0x2000);
    const Instruction out = decode(encode(in), 0x2000);
    EXPECT_TRUE(out.isBackwardBranch());
    EXPECT_EQ(out.targetPc(), 0x2000u - 16u);

    Instruction fwd = make(Op::Beq, 0, 5, 6, 8, 0x2000);
    EXPECT_FALSE(decode(encode(fwd), 0x2000).isBackwardBranch());
}

TEST(Encoding, UnifiedRegisters)
{
    // FP ops fold their registers into 32..63.
    Instruction fadd = make(Op::FaddS, 2, 3, 4, 0);
    EXPECT_EQ(fadd.unifiedDest(), 32 + 2);
    EXPECT_EQ(fadd.unifiedSrc(0), 32 + 3);
    EXPECT_EQ(fadd.unifiedSrc(1), 32 + 4);

    // Loads take an integer base even when the dest is FP.
    Instruction flw = make(Op::Flw, 2, 9, 0, 0);
    EXPECT_EQ(flw.unifiedDest(), 32 + 2);
    EXPECT_EQ(flw.unifiedSrc(0), 9);

    // x0 is never a dependency.
    Instruction addi = make(Op::Addi, 5, 0, 0, 1);
    EXPECT_EQ(addi.unifiedSrc(0), -1);
    Instruction nop = make(Op::Addi, 0, 0, 0, 0);
    EXPECT_EQ(nop.unifiedDest(), -1);
}

} // namespace
