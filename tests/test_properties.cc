/**
 * @file
 * Property-based sweeps across the whole stack: golden equivalence
 * over every (kernel x accelerator size) pair, timing-model
 * monotonicity properties (issue width, ROB, memory latency, node
 * weights), randomized LSU ordering against a flat memory oracle, and
 * mapper determinism.
 */

#include <gtest/gtest.h>

#include <random>

#include "helpers.hh"

namespace
{

using namespace mesa;
using namespace mesa::test;
using core::MesaParams;
using workloads::Kernel;
using workloads::kernelByName;

// ---------------------------------------------------------------------
// Golden equivalence: kernel x accelerator configuration.
// ---------------------------------------------------------------------

class KernelByAccel
    : public ::testing::TestWithParam<
          std::tuple<const char *, const char *>>
{
  protected:
    static accel::AccelParams
    accelFor(const std::string &name)
    {
        if (name == "M-64")
            return accel::AccelParams::m64();
        if (name == "M-512")
            return accel::AccelParams::m512();
        return accel::AccelParams::m128();
    }
};

TEST_P(KernelByAccel, GoldenAcrossSizes)
{
    const auto [kernel_name, accel_name] = GetParam();
    const Kernel kernel = kernelByName(kernel_name, {384});
    const GoldenResult want = runReference(kernel);

    MesaParams params;
    params.accel = accelFor(accel_name);
    params.iterative_optimization = false;
    // srad exceeds M-64: fold it (extension) instead of skipping.
    params.enable_time_multiplexing = true;

    const OffloadRun run = runWithOffload(kernel, params);
    ASSERT_TRUE(run.stats.has_value())
        << kernel_name << " on " << accel_name;
    EXPECT_TRUE(sameMemory(run.memory, want.memory))
        << kernel_name << " on " << accel_name;
    EXPECT_EQ(run.state.pc, want.state.pc);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, KernelByAccel,
    ::testing::Combine(
        ::testing::Values("nn", "kmeans", "hotspot", "cfd", "backprop",
                          "bfs", "srad", "lud", "pathfinder",
                          "streamcluster", "lavaMD", "gaussian",
                          "heartwall", "leukocyte", "hotspot3D"),
        ::testing::Values("M-64", "M-128", "M-512")),
    [](const auto &param_info) {
        std::string name = std::get<0>(param_info.param);
        name += "_";
        name += std::get<1>(param_info.param);
        for (auto &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

// ---------------------------------------------------------------------
// OoO core monotonicity.
// ---------------------------------------------------------------------

uint64_t
cpuCycles(const Kernel &kernel, const cpu::CoreParams &core,
          const mem::HierarchyParams &mem_params = {})
{
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);
    return cpu::runSingleCore(core, mem_params, memory, kernel.program,
                              kernel.fullRange())
        .cycles;
}

TEST(CoreProperties, WiderIssueNeverSlower)
{
    const Kernel kernel = kernelByName("cfd", {1024});
    uint64_t prev = ~uint64_t(0);
    for (unsigned width : {1u, 2u, 4u, 8u}) {
        cpu::CoreParams core;
        core.issue_width = width;
        const uint64_t cyc = cpuCycles(kernel, core);
        EXPECT_LE(cyc, prev) << "width " << width;
        prev = cyc;
    }
}

TEST(CoreProperties, BiggerRobNeverSlower)
{
    const Kernel kernel = kernelByName("lud", {1024});
    uint64_t prev = ~uint64_t(0);
    for (unsigned rob : {8u, 32u, 128u, 512u}) {
        cpu::CoreParams core;
        core.rob_size = rob;
        const uint64_t cyc = cpuCycles(kernel, core);
        EXPECT_LE(cyc, prev) << "rob " << rob;
        prev = cyc;
    }
}

TEST(CoreProperties, SlowerDramNeverFaster)
{
    const Kernel kernel = kernelByName("bfs", {1024});
    uint64_t prev = 0;
    for (uint32_t dram : {60u, 120u, 240u}) {
        mem::HierarchyParams mp;
        mp.dram_latency = dram;
        const uint64_t cyc = cpuCycles(kernel, cpu::defaultCore(), mp);
        EXPECT_GE(cyc, prev) << "dram " << dram;
        prev = cyc;
    }
}

TEST(CoreProperties, HigherMispredictPenaltyNeverFaster)
{
    const Kernel kernel = kernelByName("b+tree", {512});
    uint64_t prev = 0;
    for (unsigned pen : {4u, 12u, 30u}) {
        cpu::CoreParams core;
        core.mispredict_penalty = pen;
        const uint64_t cyc = cpuCycles(kernel, core);
        EXPECT_GE(cyc, prev) << "penalty " << pen;
        prev = cyc;
    }
}

// ---------------------------------------------------------------------
// Randomized LSU ordering vs a flat-memory oracle.
// ---------------------------------------------------------------------

TEST(LsuProperties, RandomProgramOrderMatchesOracle)
{
    std::mt19937 rng(99);
    auto addr_dist =
        std::uniform_int_distribution<uint32_t>(0, 63); // word slots
    auto val_dist = std::uniform_int_distribution<uint32_t>();
    auto cycle_dist = std::uniform_int_distribution<uint64_t>(0, 50);

    for (int trial = 0; trial < 50; ++trial) {
        mem::MainMemory real, oracle;
        mem::MemHierarchy hierarchy;
        mem::PortPool ports(2);
        mem::LoadStoreUnit lsu(real, hierarchy, ports);
        lsu.beginIteration();

        // A random interleaving of stores and loads in program order;
        // issue (ready) cycles are random, but semantics must follow
        // program order exactly.
        for (unsigned seq = 0; seq < 40; ++seq) {
            const uint32_t addr = 0x8000 + 4 * addr_dist(rng);
            if (rng() % 2 == 0) {
                const uint32_t value = val_dist(rng);
                lsu.store(seq, addr, value, riscv::Op::Sw,
                          cycle_dist(rng));
                oracle.write32(addr, value);
            } else {
                const auto res = lsu.load(seq, addr, riscv::Op::Lw,
                                          cycle_dist(rng));
                ASSERT_EQ(res.value, oracle.read32(addr))
                    << "trial " << trial << " seq " << seq;
            }
        }
        lsu.commitStores();
        // After commit, memory holds the oracle's final words.
        for (uint32_t slot = 0; slot < 64; ++slot) {
            const uint32_t addr = 0x8000 + 4 * slot;
            ASSERT_EQ(real.read32(addr), oracle.read32(addr))
                << "trial " << trial;
        }
    }
}

// ---------------------------------------------------------------------
// Latency-model and mapper properties.
// ---------------------------------------------------------------------

TEST(ModelProperties, RaisingNodeWeightNeverLowersTotal)
{
    auto ldfg = dfg::Ldfg::build(kernelByName("cfd", {64}).loopBody());
    ASSERT_TRUE(ldfg.has_value());
    const auto accel = accel::AccelParams::m128();
    ic::AccelNocInterconnect ic(accel.rows, accel.cols, 4);
    core::InstructionMapper mapper(accel, ic);
    const auto map = mapper.map(*ldfg);

    dfg::LatencyModel model(*ldfg, map.sdfg, ic);
    const double base = model.evaluate().total;
    for (size_t i = 0; i < ldfg->size(); ++i) {
        const double saved = ldfg->node(int(i)).op_latency;
        ldfg->node(int(i)).op_latency = saved + 10.0;
        EXPECT_GE(model.evaluate().total, base) << "node " << i;
        ldfg->node(int(i)).op_latency = saved;
    }
    EXPECT_DOUBLE_EQ(model.evaluate().total, base);
}

TEST(MapperProperties, Deterministic)
{
    auto ldfg =
        dfg::Ldfg::build(kernelByName("streamcluster", {64}).loopBody());
    ASSERT_TRUE(ldfg.has_value());
    const auto accel = accel::AccelParams::m128();
    ic::AccelNocInterconnect ic(accel.rows, accel.cols, 4);
    core::InstructionMapper mapper(accel, ic);

    const auto a = mapper.map(*ldfg);
    const auto b = mapper.map(*ldfg);
    ASSERT_EQ(a.completion.size(), b.completion.size());
    for (size_t i = 0; i < ldfg->size(); ++i) {
        EXPECT_EQ(a.sdfg.coordOf(int(i)).r, b.sdfg.coordOf(int(i)).r);
        EXPECT_EQ(a.sdfg.coordOf(int(i)).c, b.sdfg.coordOf(int(i)).c);
        EXPECT_DOUBLE_EQ(a.completion[i], b.completion[i]);
    }
    EXPECT_EQ(a.mapping_cycles, b.mapping_cycles);
}

TEST(MapperProperties, GridGrowthNeverWorsensModel)
{
    auto ldfg = dfg::Ldfg::build(kernelByName("srad", {64}).loopBody());
    ASSERT_TRUE(ldfg.has_value());
    double prev = std::numeric_limits<double>::infinity();
    for (int pes : {64, 128, 256, 512}) {
        const auto accel = accel::AccelParams::withPeCount(pes);
        ic::AccelNocInterconnect ic(accel.rows, accel.cols, 4);
        core::InstructionMapper mapper(accel, ic);
        const auto map = mapper.map(*ldfg);
        // More PEs: no more unmapped nodes, model no worse than 1.2x
        // (greedy placement may wobble slightly with geometry).
        EXPECT_LE(map.model_latency, prev * 1.2) << pes << " PEs";
        prev = std::min(prev, map.model_latency);
    }
}

} // namespace
