/**
 * @file
 * The deterministic parallel engine's contract, tested directly:
 * parallelForOrdered must equal the serial loop (same results, same
 * commit order) under adversarial shard timings; runCampaign must
 * produce byte-identical JSON and identical stats snapshots at any
 * job count; and an exception in one shard must propagate to the
 * caller with the pool stopped cleanly and no unexecuted work
 * committed.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fault/campaign.hh"
#include "util/parallel.hh"

namespace
{

using namespace mesa;

/** Shards finishing in adversarial (reverse) order: shard 0 is the
 *  slowest, so every later shard completes before the first commit
 *  may run. */
void
adversarialDelay(size_t i, size_t n)
{
    std::this_thread::sleep_for(
        std::chrono::microseconds(200 * (n - i)));
}

TEST(ParallelForOrdered, MatchesSerialUnderAdversarialTimings)
{
    constexpr size_t N = 64;

    std::vector<uint64_t> serial(N);
    for (size_t i = 0; i < N; ++i)
        serial[i] = i * i + 7;

    for (int jobs : {1, 2, 4, 8}) {
        std::vector<uint64_t> out(N, 0);
        std::vector<size_t> commit_order;
        parallelForOrdered(
            N, jobs,
            [&](size_t i) {
                adversarialDelay(i, N);
                out[i] = i * i + 7;
            },
            [&](size_t i) { commit_order.push_back(i); });

        EXPECT_EQ(out, serial) << "jobs " << jobs;
        ASSERT_EQ(commit_order.size(), N) << "jobs " << jobs;
        for (size_t i = 0; i < N; ++i)
            EXPECT_EQ(commit_order[i], i)
                << "commit out of order at " << i << " with " << jobs
                << " jobs";
    }
}

TEST(ParallelForOrdered, MapOrderedMatchesSerial)
{
    constexpr size_t N = 50;
    const auto serial = parallelMapOrdered<int>(
        N, 1, [](size_t i) { return int(3 * i + 1); });
    const auto parallel = parallelMapOrdered<int>(N, 8, [](size_t i) {
        adversarialDelay(i, N);
        return int(3 * i + 1);
    });
    EXPECT_EQ(parallel, serial);
}

TEST(ParallelForOrdered, WorkExceptionPropagatesAndStopsCleanly)
{
    constexpr size_t N = 32;
    std::atomic<int> committed{0};
    std::atomic<int> executed{0};

    auto run = [&](int jobs) {
        committed = 0;
        executed = 0;
        parallelForOrdered(
            N, jobs,
            [&](size_t i) {
                executed.fetch_add(1);
                if (i == 5)
                    throw std::runtime_error("shard 5 failed");
                adversarialDelay(i, N);
            },
            [&](size_t i) {
                // Nothing at or past the failed index may commit.
                EXPECT_LT(i, size_t(5));
                committed.fetch_add(1);
            });
    };

    for (int jobs : {1, 2, 8}) {
        EXPECT_THROW(run(jobs), std::runtime_error)
            << "jobs " << jobs;
        EXPECT_LE(committed.load(), 5) << "jobs " << jobs;
        // The pool joined before the throw: no shard is still
        // running, so the counters are final and in range.
        EXPECT_LE(executed.load(), int(N)) << "jobs " << jobs;
    }
}

TEST(ParallelForOrdered, CommitExceptionPropagates)
{
    constexpr size_t N = 16;
    for (int jobs : {1, 4}) {
        int commits = 0;
        EXPECT_THROW(
            parallelForOrdered(
                N, jobs, [](size_t) {},
                [&](size_t i) {
                    if (i == 3)
                        throw std::logic_error("commit 3 failed");
                    ++commits;
                }),
            std::logic_error)
            << "jobs " << jobs;
        EXPECT_EQ(commits, 3) << "jobs " << jobs;
    }
}

/** Small-but-real campaign: a kernel pair, few injections, tiny
 *  scale, so the whole determinism matrix stays in test budget. */
fault::CampaignParams
campaignParams(uint64_t seed, int jobs)
{
    fault::CampaignParams params;
    params.seed = seed;
    params.injections_per_kernel = 6;
    params.scale = workloads::SuiteScale{64};
    params.kernels = {"nn", "kmeans"};
    params.jobs = jobs;
    return params;
}

std::string
campaignJson(const fault::CampaignResult &result)
{
    std::ostringstream os;
    fault::writeCampaignJson(result, os);
    return os.str();
}

TEST(CampaignParallel, SameSeedAnyJobCountByteIdenticalJson)
{
    for (uint64_t seed : {1u, 7u, 42u}) {
        const auto serial =
            fault::runCampaign(campaignParams(seed, 1));
        const auto parallel =
            fault::runCampaign(campaignParams(seed, 8));

        EXPECT_EQ(campaignJson(serial), campaignJson(parallel))
            << "seed " << seed;

        const auto snap_serial = serial.statsSnapshot();
        const auto snap_parallel = parallel.statsSnapshot();
        EXPECT_EQ(snap_serial, snap_parallel) << "seed " << seed;
    }
}

TEST(CampaignParallel, JobsFieldDoesNotLeakIntoJson)
{
    // The jobs knob is execution policy, not an experiment parameter:
    // it must never appear in the report, or byte-identity across job
    // counts is impossible by construction.
    const auto result = fault::runCampaign(campaignParams(1, 8));
    const std::string json = campaignJson(result);
    EXPECT_EQ(json.find("jobs"), std::string::npos);
}

} // namespace
