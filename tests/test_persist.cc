/**
 * @file
 * Persistent translation-store tests: warm starts from disk must be
 * indistinguishable from cold translation (state, memory, offload
 * stats), and every corruption mode — truncation, flipped bytes,
 * version skew, key mismatch — must fall back to cold translation
 * with the right mesa.cache.persist_* counter bumped, never serve a
 * wrong config.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "mesa/translation_store.hh"
#include "util/crc32.hh"
#include "util/stats_registry.hh"

#include "helpers.hh"

namespace
{

namespace fs = std::filesystem;
using namespace mesa;

/** One offload run with live persist counters captured. */
struct PersistRun
{
    test::OffloadRun run;
    std::map<std::string, double> stats;
};

PersistRun
runOnce(const workloads::Kernel &kernel, const core::MesaParams &params)
{
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    core::MesaController mesa(params, memory);
    StatsRegistry reg;
    mesa.attachStats(&reg);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    test::advanceToLoop(emu, kernel);

    PersistRun out;
    out.run.stats = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                                     kernel.parallel);
    emu.run(50'000'000);

    mesa.attachStats(nullptr);
    reg.materialize();
    out.run.state = emu.state();
    out.run.memory = memory.snapshot();
    out.stats = reg.flatValues();
    return out;
}

/** The runs must be indistinguishable in every observable. */
void
expectSameRun(const test::OffloadRun &a, const test::OffloadRun &b)
{
    ASSERT_EQ(a.stats.has_value(), b.stats.has_value());
    if (a.stats) {
        EXPECT_EQ(a.stats->encode_cycles, b.stats->encode_cycles);
        EXPECT_EQ(a.stats->mapping_cycles, b.stats->mapping_cycles);
        EXPECT_EQ(a.stats->config_cycles, b.stats->config_cycles);
        EXPECT_EQ(a.stats->accel_cycles, b.stats->accel_cycles);
        EXPECT_EQ(a.stats->accel_iterations, b.stats->accel_iterations);
        EXPECT_EQ(a.stats->tile_factor, b.stats->tile_factor);
        EXPECT_EQ(a.stats->pipelined, b.stats->pipelined);
        EXPECT_EQ(a.stats->model_latency, b.stats->model_latency);
    }
    EXPECT_EQ(a.state.pc, b.state.pc);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(a.state.x[size_t(i)], b.state.x[size_t(i)]) << "x" << i;
        EXPECT_EQ(a.state.f[size_t(i)], b.state.f[size_t(i)]) << "f" << i;
    }
    EXPECT_TRUE(test::sameMemory(a.memory, b.memory));
}

/** Every test gets a private store directory; the global store is
 *  always disabled again on the way out. */
class PersistTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::temp_directory_path() /
               ("mesa_persist_" + std::string(info->name()) + "_" +
                std::to_string(::getpid()));
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        core::TranslationStore::global().setDirectory("");
        fs::remove_all(dir_);
    }

    void
    enableStore()
    {
        core::TranslationStore::global().setDirectory(dir_.string());
    }

    std::vector<fs::path>
    cacheFiles() const
    {
        std::vector<fs::path> out;
        if (!fs::exists(dir_))
            return out;
        for (const auto &e : fs::directory_iterator(dir_))
            if (e.path().extension() == ".mesatc")
                out.push_back(e.path());
        std::sort(out.begin(), out.end());
        return out;
    }

    static std::string
    readFile(const fs::path &p)
    {
        std::ifstream f(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
    }

    static void
    writeFile(const fs::path &p, const std::string &bytes)
    {
        std::ofstream f(p, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(), std::streamsize(bytes.size()));
    }

    /** Recompute the trailing whole-file CRC after tampering, so the
     *  tampered field (not the checksum) is what load() rejects. */
    static void
    refreshCrc(std::string &bytes)
    {
        ASSERT_GE(bytes.size(), 4u);
        const uint32_t crc = crc32(bytes.data(), bytes.size() - 4);
        bytes[bytes.size() - 4] = char(crc);
        bytes[bytes.size() - 3] = char(crc >> 8);
        bytes[bytes.size() - 2] = char(crc >> 16);
        bytes[bytes.size() - 1] = char(crc >> 24);
    }

    fs::path dir_;
};

TEST_F(PersistTest, WarmRunMatchesColdAndUncached)
{
    const auto kernel = workloads::makeNn(256);
    core::MesaParams params;

    const PersistRun plain = runOnce(kernel, params); // no store
    enableStore();
    const PersistRun cold = runOnce(kernel, params); // miss + store
    const PersistRun warm = runOnce(kernel, params); // disk hit

    ASSERT_TRUE(plain.run.stats.has_value());
    expectSameRun(plain.run, cold.run);
    expectSameRun(plain.run, warm.run);

    EXPECT_EQ(cold.stats.at("mesa.cache.persist_misses"), 1.0);
    EXPECT_EQ(cold.stats.at("mesa.cache.persist_stores"), 1.0);
    EXPECT_EQ(cold.stats.at("mesa.cache.persist_hits"), 0.0);
    EXPECT_EQ(warm.stats.at("mesa.cache.persist_hits"), 1.0);
    EXPECT_EQ(warm.stats.at("mesa.cache.persist_stores"), 0.0);
    EXPECT_EQ(cacheFiles().size(), 1u);

    // Without a store directory the persist counters are not even
    // registered — the stats surface is byte-identical to before.
    EXPECT_EQ(plain.stats.count("mesa.cache.persist_hits"), 0u);
}

TEST_F(PersistTest, TruncatedFileFallsBackColdAndHeals)
{
    const auto kernel = workloads::makeNn(256);
    core::MesaParams params;
    enableStore();
    const PersistRun cold = runOnce(kernel, params);

    const auto files = cacheFiles();
    ASSERT_EQ(files.size(), 1u);
    const std::string full = readFile(files[0]);
    writeFile(files[0], full.substr(0, full.size() / 2));

    const PersistRun recovered = runOnce(kernel, params);
    expectSameRun(cold.run, recovered.run);
    EXPECT_EQ(recovered.stats.at("mesa.cache.persist_corrupt"), 1.0);
    EXPECT_EQ(recovered.stats.at("mesa.cache.persist_hits"), 0.0);
    // Self-healing: the cold fallback re-stored a good entry.
    EXPECT_EQ(recovered.stats.at("mesa.cache.persist_stores"), 1.0);
    const PersistRun healed = runOnce(kernel, params);
    EXPECT_EQ(healed.stats.at("mesa.cache.persist_hits"), 1.0);
    expectSameRun(cold.run, healed.run);
}

TEST_F(PersistTest, FlippedPayloadByteFallsBackCold)
{
    const auto kernel = workloads::makeNn(256);
    core::MesaParams params;
    enableStore();
    const PersistRun cold = runOnce(kernel, params);

    const auto files = cacheFiles();
    ASSERT_EQ(files.size(), 1u);
    std::string bytes = readFile(files[0]);
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() / 2] ^= 0x40; // payload bit flip, stale CRC
    writeFile(files[0], bytes);

    const PersistRun recovered = runOnce(kernel, params);
    expectSameRun(cold.run, recovered.run);
    EXPECT_EQ(recovered.stats.at("mesa.cache.persist_corrupt"), 1.0);
    EXPECT_EQ(recovered.stats.at("mesa.cache.persist_hits"), 0.0);
}

TEST_F(PersistTest, VersionSkewFallsBackCold)
{
    const auto kernel = workloads::makeNn(256);
    core::MesaParams params;
    enableStore();
    const PersistRun cold = runOnce(kernel, params);

    const auto files = cacheFiles();
    ASSERT_EQ(files.size(), 1u);
    std::string bytes = readFile(files[0]);
    bytes[4] = char(0x7f); // version field (offset 4), CRC refreshed
    refreshCrc(bytes);
    writeFile(files[0], bytes);

    const PersistRun recovered = runOnce(kernel, params);
    expectSameRun(cold.run, recovered.run);
    EXPECT_EQ(recovered.stats.at("mesa.cache.persist_version_skew"),
              1.0);
    EXPECT_EQ(recovered.stats.at("mesa.cache.persist_hits"), 0.0);
}

TEST_F(PersistTest, KeyEchoMismatchFallsBackCold)
{
    const auto kernel = workloads::makeNn(256);
    core::MesaParams params;
    enableStore();
    const PersistRun cold = runOnce(kernel, params);

    const auto files = cacheFiles();
    ASSERT_EQ(files.size(), 1u);
    std::string bytes = readFile(files[0]);
    bytes[8] ^= 0x01; // region_start echo (offset 8), CRC refreshed
    refreshCrc(bytes);
    writeFile(files[0], bytes);

    const PersistRun recovered = runOnce(kernel, params);
    expectSameRun(cold.run, recovered.run);
    EXPECT_EQ(recovered.stats.at("mesa.cache.persist_key_mismatch"),
              1.0);
    EXPECT_EQ(recovered.stats.at("mesa.cache.persist_hits"), 0.0);
}

TEST_F(PersistTest, GeometryMismatchIsAMissNotAWrongConfig)
{
    const auto kernel = workloads::makeNn(256);
    core::MesaParams m128;
    enableStore();
    const PersistRun big = runOnce(kernel, m128);
    ASSERT_EQ(cacheFiles().size(), 1u);

    // A different fabric geometry keys a different entry: the M-64
    // run must miss (never load the M-128 config) and store its own.
    core::MesaParams m64;
    m64.accel = accel::AccelParams::byName("M-64");
    const PersistRun small = runOnce(kernel, m64);
    EXPECT_EQ(small.stats.at("mesa.cache.persist_hits"), 0.0);
    EXPECT_EQ(small.stats.at("mesa.cache.persist_misses"), 1.0);
    EXPECT_EQ(cacheFiles().size(), 2u);

    core::TranslationStore::global().setDirectory("");
    const PersistRun small_plain = runOnce(kernel, m64);
    expectSameRun(small_plain.run, small.run);
    (void)big;
}

TEST_F(PersistTest, BlockedPeSetChangesTheKey)
{
    // Quarantined-PE sets are part of the key: a config mapped around
    // blocked PEs must never be served to a healthy fabric or vice
    // versa.
    const uint32_t none = core::blockedPeDigest({});
    const uint32_t one = core::blockedPeDigest({{1, 2}});
    const uint32_t other = core::blockedPeDigest({{2, 1}});
    EXPECT_NE(none, one);
    EXPECT_NE(one, other);

    core::TranslationKey a;
    a.blocked_crc = one;
    core::TranslationKey b;
    b.blocked_crc = other;
    const auto &store = core::TranslationStore::global();
    EXPECT_NE(store.entryPath(a), store.entryPath(b));
}

TEST_F(PersistTest, ParamsFingerprintSeesPrepareRelevantKnobs)
{
    core::MesaParams base;
    const uint32_t fp = core::paramsFingerprint(base);

    core::MesaParams geom = base;
    geom.accel = accel::AccelParams::byName("M-64");
    EXPECT_NE(core::paramsFingerprint(geom), fp);

    core::MesaParams tiling = base;
    tiling.enable_tiling = !tiling.enable_tiling;
    EXPECT_NE(core::paramsFingerprint(tiling), fp);

    core::MesaParams unroll = base;
    unroll.unroll_factor += 1;
    EXPECT_NE(core::paramsFingerprint(unroll), fp);
}

} // namespace
