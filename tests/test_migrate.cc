/**
 * @file
 * Live-migration tests: cross-geometry checkpoint/remap/resume
 * bit-exactness across the kernel suite, warm bitstream reuse between
 * equal-height bands, cold re-translation with config-cache warming,
 * virtual-row folding onto undersized targets, blocked-PE avoidance,
 * rollback when a fault lands mid-migration, the elastic scheduler's
 * migrate-instead-of-preempt policy, and the controller's
 * drain-and-relocate path.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fault/campaign.hh"
#include "helpers.hh"
#include "mesa/config_cache.hh"
#include "migrate/migrate.hh"
#include "sched/multicore.hh"
#include "sched/scheduler.hh"
#include "util/stats_registry.hh"

using namespace mesa;
using namespace mesa::test;
using workloads::Kernel;
using workloads::kernelByName;

namespace
{

/** A kernel parked at its loop entry and running on a manually
 *  translated source fabric (no controller in the way — migration is
 *  exercised as a primitive). */
struct LiveOffload
{
    mem::MainMemory memory;
    std::unique_ptr<riscv::Emulator> emu;
    std::unique_ptr<accel::Accelerator> source;
    std::vector<riscv::Instruction> body;
};

LiveOffload
startOffload(const Kernel &kernel, const accel::AccelParams &src_params,
             uint64_t source_iterations)
{
    LiveOffload live;
    kernel.init_data(live.memory);
    cpu::loadProgram(live.memory, kernel.program);
    live.emu = std::make_unique<riscv::Emulator>(live.memory);
    live.emu->reset(kernel.program.base_pc);
    kernel.fullRange()(live.emu->state());
    advanceToLoop(*live.emu, kernel);

    live.body = kernel.loopBody();
    const auto plan = migrate::translateBody(live.body, src_params,
                                             core::MapperParams{}, {});
    if (!plan)
        return live; // caller asserts source != nullptr
    live.source =
        std::make_unique<accel::Accelerator>(src_params, live.memory);
    live.source->configure(plan->config);
    const auto r = live.source->run(live.emu->state(), source_iterations);
    EXPECT_GT(r.iterations, 0u);
    EXPECT_FALSE(r.completed) << "source ran to completion; nothing "
                                 "left to migrate";
    return live;
}

} // namespace

// ---------------------------------------------------------------------
// Tentpole: migrate mid-offload onto a different geometry, resume, and
// end bit-exact with a run that never migrated — for every suite
// kernel that offloads.

TEST(Migrate, CrossGeometryResumeIsBitExactAcrossSuite)
{
    const struct
    {
        const char *name;
        uint64_t size;
    } cases[] = {
        {"nn", 256}, {"hotspot", 128}, {"srad", 128}, {"cfd", 128}};

    for (const auto &c : cases) {
        SCOPED_TRACE(c.name);
        const Kernel kernel = kernelByName(c.name, {c.size});
        const auto golden = runReference(kernel);

        // Source: the full 16x8 array. Target: an 8-row band — a
        // genuinely different geometry, so the move must re-translate.
        // 8 iterations up front stay below every suite loop's trip
        // count, so the migration is a genuine mid-offload move.
        auto live = startOffload(kernel, accel::AccelParams::m128(), 8);
        ASSERT_TRUE(live.source);

        accel::Accelerator target(
            accel::AccelParams::m128().subArray(0, 8), live.memory);
        const auto out = migrate::migrateOffload(
            live.body, live.source->config(), live.emu->state(),
            live.memory, target, core::MapperParams{});
        ASSERT_TRUE(out.has_value());
        EXPECT_TRUE(out->resumed);
        EXPECT_FALSE(out->warm) << "an 8-row band cannot reuse the "
                                   "16-row bitstream";
        EXPECT_TRUE(out->run.completed);
        EXPECT_GT(out->cost.encode_cycles, 0u);
        EXPECT_GT(out->cost.config_cycles, 0u);

        live.emu->run(50'000'000);
        EXPECT_EQ(live.emu->state(), golden.state);
        EXPECT_TRUE(sameMemory(live.memory.snapshot(), golden.memory));
    }
}

TEST(Migrate, WarmMoveBetweenEqualBandsReusesBitstream)
{
    const Kernel kernel = kernelByName("nn", {256});
    const auto golden = runReference(kernel);

    const auto band = accel::AccelParams::m128().subArray(0, 8);
    auto live = startOffload(kernel, band, 64);
    ASSERT_TRUE(live.source);

    // Equal-height band at a different origin: sub-array coordinates
    // are band-local, so the running bitstream fits verbatim.
    accel::Accelerator target(
        accel::AccelParams::m128().subArray(8, 8), live.memory);
    const auto out = migrate::migrateOffload(
        live.body, live.source->config(), live.emu->state(),
        live.memory, target, core::MapperParams{});
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->resumed);
    EXPECT_TRUE(out->warm);
    EXPECT_EQ(out->cost.encode_cycles, 0u);
    EXPECT_EQ(out->cost.mapping_cycles, 0u);
    EXPECT_GT(out->cost.config_cycles, 0u) << "the bitstream write is "
                                              "always paid";
    EXPECT_EQ(out->cost.checkpoint_cycles,
              uint64_t(riscv::NumUnifiedRegs));

    live.emu->run(50'000'000);
    EXPECT_EQ(live.emu->state(), golden.state);
    EXPECT_TRUE(sameMemory(live.memory.snapshot(), golden.memory));
}

TEST(Migrate, ColdMoveWarmsTheConfigCacheForTheNextMigration)
{
    const Kernel kernel = kernelByName("hotspot", {128});
    auto live = startOffload(kernel, accel::AccelParams::m128(), 32);
    ASSERT_TRUE(live.source);

    const auto target = accel::AccelParams::m128().subArray(0, 8);
    core::ConfigCache cache;

    const auto cold = migrate::planMigration(
        live.body, live.source->config(), target, core::MapperParams{},
        {}, false, &cache);
    ASSERT_TRUE(cold.has_value());
    EXPECT_FALSE(cold->warm);
    EXPECT_GT(cold->cost.encode_cycles + cold->cost.mapping_cycles, 0u);

    // Same body, same geometry, same cache: the translated config is
    // found by body CRC and the translation cost vanishes.
    const auto warm = migrate::planMigration(
        live.body, live.source->config(), target, core::MapperParams{},
        {}, false, &cache);
    ASSERT_TRUE(warm.has_value());
    EXPECT_TRUE(warm->warm);
    EXPECT_EQ(warm->cost.encode_cycles, 0u);
    EXPECT_EQ(warm->cost.mapping_cycles, 0u);
    EXPECT_EQ(warm->config.slots.size(), cold->config.slots.size());
}

TEST(Migrate, FoldsOntoUndersizedTargetAndStaysBitExact)
{
    const Kernel kernel = kernelByName("hotspot", {128});
    const auto golden = runReference(kernel);

    auto live = startOffload(kernel, accel::AccelParams::m128(), 32);
    ASSERT_TRUE(live.source);

    // A band too short for the body: ceil(n / cols) physical rows
    // would be needed flat, so half that forces time-multiplex >= 2.
    const auto full = accel::AccelParams::m128();
    const int need =
        int((live.body.size() + size_t(full.cols) - 1) /
            size_t(full.cols));
    ASSERT_GE(need, 2) << "body too small to exercise folding";
    const auto band = full.subArray(0, (need + 1) / 2);

    const auto plan = migrate::planMigration(
        live.body, live.source->config(), band, core::MapperParams{},
        {});
    ASSERT_TRUE(plan.has_value());
    EXPECT_GT(plan->time_multiplex, 1);

    accel::Accelerator target(band, live.memory);
    const auto out = migrate::migrateOffload(
        live.body, live.source->config(), live.emu->state(),
        live.memory, target, core::MapperParams{});
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->resumed);

    live.emu->run(50'000'000);
    EXPECT_EQ(live.emu->state(), golden.state);
    EXPECT_TRUE(sameMemory(live.memory.snapshot(), golden.memory));
}

TEST(Migrate, BlockedPesOnTargetAreAvoided)
{
    const Kernel kernel = kernelByName("nn", {256});
    const auto golden = runReference(kernel);

    auto live = startOffload(kernel, accel::AccelParams::m128(), 64);
    ASSERT_TRUE(live.source);

    // Block the PE hosting the source's first slot (band-local
    // coordinates carry over) on an equal-geometry target: the warm
    // path is forbidden and the re-translation must route around it.
    const ic::Coord victim = live.source->config().slots.front().pos;
    ASSERT_TRUE(victim.valid());

    accel::Accelerator target(accel::AccelParams::m128(), live.memory);
    const auto out = migrate::migrateOffload(
        live.body, live.source->config(), live.emu->state(),
        live.memory, target, core::MapperParams{}, {victim});
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->resumed);
    EXPECT_FALSE(out->warm);
    const int phys_rows = target.params().rows;
    for (const auto &slot : target.config().slots)
        EXPECT_FALSE(slot.pos.valid() &&
                     slot.pos.r % phys_rows == victim.r &&
                     slot.pos.c == victim.c)
            << "slot placed on (an alias of) the blocked PE";

    live.emu->run(50'000'000);
    EXPECT_EQ(live.emu->state(), golden.state);
    EXPECT_TRUE(sameMemory(live.memory.snapshot(), golden.memory));
}

TEST(Migrate, FaultDuringMigrationRollsBackByteExactly)
{
    const Kernel kernel = kernelByName("nn", {256});
    const auto golden = runReference(kernel);

    auto live = startOffload(kernel, accel::AccelParams::m128(), 64);
    ASSERT_TRUE(live.source);

    const riscv::ArchState before = live.emu->state();
    const auto before_mem = live.memory.snapshot();

    // The target hangs from its first resumed iteration: the watchdog
    // trips and the migration must restore the checkpoint.
    auto bad_params = accel::AccelParams::m128().subArray(0, 8);
    bad_params.watchdog_cycles = 20'000;
    accel::Accelerator target(bad_params, live.memory);
    accel::FaultPlane plane;
    plane.stuck_branches.push_back({0});
    target.injectFaults(plane);

    const auto out = migrate::migrateOffload(
        live.body, live.source->config(), live.emu->state(),
        live.memory, target, core::MapperParams{});
    ASSERT_TRUE(out.has_value());
    EXPECT_FALSE(out->resumed);
    EXPECT_EQ(live.emu->state(), before);
    EXPECT_TRUE(sameMemory(live.memory.snapshot(), before_mem));

    // The failed migration is invisible: finishing on the source
    // fabric still lands on the golden result.
    const auto r = live.source->run(live.emu->state());
    EXPECT_TRUE(r.completed);
    live.emu->run(50'000'000);
    EXPECT_EQ(live.emu->state(), golden.state);
    EXPECT_TRUE(sameMemory(live.memory.snapshot(), golden.memory));
}

// ---------------------------------------------------------------------
// Elastic repartitioning: under skewed load the scheduler migrates the
// surviving tenant onto a merged band instead of leaving freed ways
// idle — and the answer does not change.

TEST(ElasticSched, SkewedLoadMigratesAndBeatsStaticPartitioning)
{
    // The validated skewed cell (compute-bound, so the merged band's
    // extra rows actually shorten the solo tail): cfd at 4096
    // iterations, 4 tenants under Zipf-1.2 weights, 4-row bands.
    const Kernel kernel = kernelByName("cfd", {4096});
    const int tenants = 4;

    sched::SharedRunParams base;
    base.sched.accel = accel::AccelParams::m128();
    base.sched.spatial_ways = tenants;
    base.sched.enable_tiling = true;
    for (int t = 0; t < tenants; ++t)
        base.weights.push_back(1.0 / std::pow(double(t + 1), 1.2));

    sched::SharedRunParams stat = base;
    mem::MainMemory static_mem;
    const auto s = sched::runShared(stat, static_mem, kernel, tenants);
    ASSERT_TRUE(s.all_completed);
    EXPECT_EQ(s.sched.migrations, 0u);

    sched::SharedRunParams elastic = base;
    elastic.sched.elastic = true;
    mem::MainMemory elastic_mem;
    const auto e =
        sched::runShared(elastic, elastic_mem, kernel, tenants);
    ASSERT_TRUE(e.all_completed);

    // The surviving tenants were migrated onto merged bands, the
    // translation cost was accounted, and the skewed makespan
    // improved over static bands.
    EXPECT_GE(e.sched.migrations, 1u);
    EXPECT_GT(e.sched.migration_translate_cycles +
                  e.sched.migration_stream_cycles,
              0u);
    EXPECT_LT(e.makespan_cycles, s.makespan_cycles);

    // Elastic vs static is a scheduling decision, not a functional
    // one: both runs end with byte-identical memory.
    EXPECT_TRUE(
        sameMemory(elastic_mem.snapshot(), static_mem.snapshot()));
}

// ---------------------------------------------------------------------
// Quarantine draining: a hung offload is checkpointed and relocated
// (drain-and-relocate) before the controller ever considers running
// degraded; a second trip falls back to the CPU with golden state.

TEST(Drain, ControllerRelocatesHungOffloadAndRecovers)
{
    const Kernel kernel = kernelByName("hotspot", {128});
    const auto golden = runReference(kernel);

    core::MesaParams params;
    params.fault.enabled = true;
    params.fault.checked_mode = false;
    params.fault.migrate_on_fault = true;
    params.fault.watchdog_cycles = 20'000;

    StatsRegistry stats;
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);
    core::MesaController mesa(params, memory);
    mesa.attachStats(&stats);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    advanceToLoop(emu, kernel);

    accel::FaultPlane plane;
    plane.stuck_branches.push_back({4});
    mesa.accelerator().injectFaults(plane);

    auto os = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                               kernel.parallel);
    ASSERT_TRUE(os.has_value());

    // The drain path ran: a relocation was attempted (the stuck
    // control line is not BIST-localizable, so the retry hangs again
    // and the work drains to the CPU — never a degraded result).
    EXPECT_GE(stats.value("mesa.migrate.relocations"), 1.0);
    EXPECT_EQ(stats.value("mesa.migrate.relocation_success"), 0.0);
    EXPECT_GT(stats.value("mesa.migrate.translate_cycles"), 0.0);
    EXPECT_GT(stats.value("mesa.migrate.stream_cycles"), 0.0);
    EXPECT_GE(stats.value("mesa.fault.watchdog_trips"), 2.0)
        << "the relocated attempt must also be guarded";

    // Live gauges reflect the degraded fabric.
    EXPECT_GE(stats.value("mesa.fault.quarantined_regions"), 1.0);

    emu.run(50'000'000);
    EXPECT_EQ(emu.state(), golden.state);
    EXPECT_TRUE(sameMemory(memory.snapshot(), golden.memory));
}

// The campaign-level guarantee: with --migrate, injections still show
// zero silent corruption, relocations happen, and their cost is
// decomposed per kernel.

TEST(Drain, MigrateCampaignStaysCleanAndCountsRelocations)
{
    fault::CampaignParams params;
    params.seed = 11;
    params.injections_per_kernel = 12;
    params.kernels = {"nn", "hotspot"};
    params.migrate = true;

    const auto result = fault::runCampaign(params);
    EXPECT_EQ(result.totalInjections(), 24);
    EXPECT_EQ(result.totalSilent(), 0);
    EXPECT_EQ(result.totalCorrupted(), 0);
    EXPECT_GE(result.totalRelocations(), 1);
    EXPECT_GT(result.totalMigrateTranslateCycles(), 0u);
    EXPECT_GT(result.totalMigrateStreamCycles(), 0u);

    // Determinism is preserved under the drain path.
    const auto again = fault::runCampaign(params);
    EXPECT_EQ(result.statsSnapshot(), again.statsSnapshot());
}
