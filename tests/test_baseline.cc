/**
 * @file
 * Baseline-model tests: the OpenCGRA-substitute modulo scheduler
 * (ResMII/RecMII arithmetic, recurrence sensitivity) and the
 * DynaSpAM-substitute 1D feed-forward mapper (qualification limits,
 * throughput bounds).
 */

#include <gtest/gtest.h>

#include "baseline/dynaspam.hh"
#include "baseline/opencgra.hh"
#include "riscv/assembler.hh"
#include "workloads/kernel.hh"

namespace
{

using namespace mesa;
using namespace mesa::baseline;
using namespace mesa::riscv;
using namespace mesa::riscv::reg;

dfg::Ldfg
buildBody(const workloads::Kernel &kernel)
{
    auto g = dfg::Ldfg::build(kernel.loopBody());
    EXPECT_TRUE(g.has_value());
    return std::move(*g);
}

TEST(OpenCgra, IiIsMaxOfBounds)
{
    const auto accel = accel::AccelParams::m128();
    OpenCgraScheduler sched(accel);
    const auto kernel = workloads::makeNn(256);
    const CgraSchedule s = sched.schedule(buildBody(kernel));
    EXPECT_EQ(s.ii, std::max(s.res_mii, s.rec_mii));
    EXPECT_GE(s.ii, 1u);
    EXPECT_GT(s.schedule_length, double(s.ii));
}

TEST(OpenCgra, ReductionRaisesRecMii)
{
    const auto accel = accel::AccelParams::m128();
    OpenCgraScheduler sched(accel);
    // backprop carries fa0 across iterations -> RecMII >= fadd chain.
    const CgraSchedule red =
        sched.schedule(buildBody(workloads::makeBackprop(256)));
    // nn carries only the induction addi -> RecMII small.
    const CgraSchedule par =
        sched.schedule(buildBody(workloads::makeNn(256)));
    EXPECT_GT(red.rec_mii, par.rec_mii);
    EXPECT_GE(red.rec_mii, 3u); // at least the fadd latency
}

TEST(OpenCgra, ResMiiScalesWithArraySize)
{
    const auto big = accel::AccelParams::m512();
    const auto small = accel::AccelParams::m64();
    const auto body = buildBody(workloads::makeSrad(512));
    const CgraSchedule s_small =
        OpenCgraScheduler(small).schedule(body);
    const CgraSchedule s_big = OpenCgraScheduler(big).schedule(body);
    EXPECT_GE(s_small.res_mii, s_big.res_mii);
}

TEST(OpenCgra, CyclesForIterations)
{
    const auto accel = accel::AccelParams::m128();
    OpenCgraScheduler sched(accel);
    const CgraSchedule s =
        sched.schedule(buildBody(workloads::makeKmeans(256)));
    EXPECT_EQ(s.cyclesFor(0), 0u);
    const uint64_t c1 = s.cyclesFor(1);
    const uint64_t c100 = s.cyclesFor(100);
    EXPECT_EQ(c100, c1 + 99u * s.ii);
}

TEST(DynaSpam, QualifiesSmallLoops)
{
    DynaSpamMapper mapper;
    const auto res = mapper.map(buildBody(workloads::makeNn(256)));
    EXPECT_TRUE(res.qualified);
    EXPECT_GT(res.per_iter_cycles, 0.0);
}

TEST(DynaSpam, RejectsOversizedTraces)
{
    DynaSpamMapper mapper; // max_trace = 64
    const auto res = mapper.map(buildBody(workloads::makeSrad(512)));
    EXPECT_FALSE(res.qualified)
        << "~78-instruction body exceeds the in-pipeline fabric";
}

TEST(DynaSpam, MemoryPortsBoundThroughput)
{
    DynaSpamParams p;
    p.mem_ports = 2;
    DynaSpamMapper mapper(p);
    // hotspot: 5 memory ops per iteration -> >= 2.5 cycles/iter.
    const auto res =
        mapper.map(buildBody(workloads::makeHotspot(256)));
    ASSERT_TRUE(res.qualified);
    EXPECT_GE(res.per_iter_cycles, 2.5);
}

TEST(DynaSpam, DeeperFabricNeverSlower)
{
    DynaSpamParams shallow;
    shallow.depth = 4;
    DynaSpamParams deep;
    deep.depth = 16;
    const auto body = buildBody(workloads::makeCfd(256));
    const auto rs = DynaSpamMapper(shallow).map(body);
    const auto rd = DynaSpamMapper(deep).map(body);
    if (rs.qualified && rd.qualified)
        EXPECT_LE(rd.per_iter_cycles, rs.per_iter_cycles + 1e-9);
    else
        EXPECT_TRUE(rd.qualified); // deeper fabric fits at least as much
}

} // namespace
