/**
 * @file
 * Tests for the cycle-timeline event tracer and the hierarchical
 * stats registry: emission gating, time-base arithmetic, Chrome
 * trace-event JSON export (validated with a tiny JSON parser), and
 * the registry's path rules, rendering, and snapshots.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "mesa/imap_fsm.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/stats_registry.hh"
#include "util/trace.hh"

namespace
{

using namespace mesa;

// ---------------------------------------------------------------------
// Minimal JSON validity checker: enough of a recursive-descent parser
// to confirm the exported trace is well-formed and to count the
// top-level array elements. Not a general parser — test-only.
// ---------------------------------------------------------------------

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    validArray(size_t *num_elements = nullptr)
    {
        skipWs();
        size_t n = 0;
        if (!array(&n))
            return false;
        skipWs();
        if (num_elements)
            *num_elements = n;
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array(nullptr);
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array(size_t *count)
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        size_t n = 0;
        while (true) {
            if (!value())
                return false;
            ++n;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                if (count)
                    *count = n;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\')
                ++pos_; // skip the escaped character
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *lit)
    {
        const size_t len = std::string(lit).size();
        if (s_.compare(pos_, len, lit) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    const std::string &s_;
    size_t pos_ = 0;
};

// The tracer is a process-global singleton: every test starts from a
// clean, disabled state and restores it on exit.
class TracerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer::global().enable(false);
        Tracer::global().clear();
    }

    void
    TearDown() override
    {
        Tracer::global().enable(false);
        Tracer::global().clear();
        Tracer::global().setMaxEvents(4'000'000);
    }
};

// ---------------------------------------------------------------------
// Tracer.
// ---------------------------------------------------------------------

TEST_F(TracerTest, DisabledTracerRecordsNothing)
{
    Tracer &t = Tracer::global();
    ASSERT_FALSE(Tracer::active());
    t.span("cpu0", "execute", 0, 100);
    t.instant("cpu0", "event", 50);
    t.spanLocal("accel", "tile0", 0, 10);
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_TRUE(t.tracks().empty());
    EXPECT_EQ(t.droppedEvents(), 0u);
}

TEST_F(TracerTest, SpansNestOnOneTrack)
{
    Tracer &t = Tracer::global();
    t.enable();
    // An outer phase span with two sub-spans inside its interval, the
    // way the controller lays encode/map inside an offload.
    t.span("mesa.ctrl", "offload", 100, 50);
    t.span("mesa.ctrl", "encode", 100, 20);
    t.span("mesa.ctrl", "map", 120, 30);
    ASSERT_EQ(t.eventCount(), 3u);
    ASSERT_EQ(t.tracks().size(), 1u);
    EXPECT_EQ(t.tracks()[0], "mesa.ctrl");

    const auto &ev = t.events();
    // All on the same track, and the children stay inside the parent.
    EXPECT_EQ(ev[0].track, ev[1].track);
    EXPECT_EQ(ev[1].track, ev[2].track);
    EXPECT_GE(ev[1].start, ev[0].start);
    EXPECT_LE(ev[1].start + ev[1].duration,
              ev[0].start + ev[0].duration);
    EXPECT_GE(ev[2].start, ev[1].start + ev[1].duration);
    EXPECT_LE(ev[2].start + ev[2].duration,
              ev[0].start + ev[0].duration);
}

TEST_F(TracerTest, TimeBaseShiftsLocalEmission)
{
    Tracer &t = Tracer::global();
    t.enable();
    t.setBase(1000);
    t.setCycle(25);
    EXPECT_EQ(t.now(), 1025u);

    t.spanLocal("accel", "tile0", 10, 5);
    t.instantLocal("mem", "accel-dram", 2);
    ASSERT_EQ(t.eventCount(), 2u);
    EXPECT_EQ(t.events()[0].start, 1010u);
    EXPECT_EQ(t.events()[1].start, 1002u);
    EXPECT_TRUE(t.events()[1].instant);

    // Absolute emission ignores the base.
    t.span("cpu0", "execute", 7, 3);
    EXPECT_EQ(t.events()[2].start, 7u);
}

TEST_F(TracerTest, EventCapCountsDrops)
{
    Tracer &t = Tracer::global();
    t.enable();
    t.setMaxEvents(2);
    t.instant("a", "x", 0);
    t.instant("a", "y", 1);
    t.instant("a", "z", 2);
    EXPECT_EQ(t.eventCount(), 2u);
    EXPECT_EQ(t.droppedEvents(), 1u);
}

TEST_F(TracerTest, ExportedJsonIsAValidChromeTraceArray)
{
    Tracer &t = Tracer::global();
    t.enable();
    t.span("cpu0", "execute", 0, 40,
           {{"instructions", uint64_t(12)}, {"kind", "loop"}});
    t.instant("cpu0", "loop-qualified", 40, {{"pc", uint64_t(0x1000)}});
    t.span("accel", "epoch", 40, 100, {{"iterations", uint64_t(64)}});

    std::ostringstream os;
    t.exportJson(os);
    const std::string text = os.str();

    size_t elements = 0;
    JsonChecker checker(text);
    EXPECT_TRUE(checker.validArray(&elements)) << text;
    // 2 tracks x 2 metadata records + 3 events.
    EXPECT_EQ(elements, 7u);

    // The Chrome trace-event essentials are present.
    EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"dur\":40"), std::string::npos);
    EXPECT_NE(text.find("\"iterations\":64"), std::string::npos);
}

TEST_F(TracerTest, ClearForgetsEventsAndBase)
{
    Tracer &t = Tracer::global();
    t.enable();
    t.setBase(500);
    t.span("a", "s", 0, 1);
    t.clear();
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_TRUE(t.tracks().empty());
    EXPECT_EQ(t.now(), 0u);
    // clear() keeps the tracer enabled (it resets data, not config).
    EXPECT_TRUE(Tracer::active());
}

TEST_F(TracerTest, EmitImapTracePacksSpansBackToBack)
{
    using namespace mesa::core;
    ImapFsm fsm;
    fsm.mapInstruction(4);
    fsm.mapInstruction(1);
    fsm.mapInstruction(9, 1);

    Tracer &t = Tracer::global();
    t.enable();
    const uint64_t end =
        emitImapTrace(t, "mesa.imap", fsm.trace(), 200);
    EXPECT_EQ(end, 200 + fsm.totalCycles());
    ASSERT_EQ(t.eventCount(), 3u);
    // Spans tile the interval with no gaps or overlap.
    uint64_t cursor = 200;
    for (const auto &e : t.events()) {
        EXPECT_EQ(e.start, cursor);
        cursor += e.duration;
    }
    EXPECT_EQ(cursor, end);
}

// ---------------------------------------------------------------------
// StatsRegistry.
// ---------------------------------------------------------------------

TEST(StatsRegistry, OwnedAndLinkedStats)
{
    StatsRegistry reg;
    Counter &c = reg.counter("mesa.offloads");
    c += 3;
    Average &a = reg.average("mesa.epoch.cycles_per_iter");
    a.sample(2.0);
    a.sample(4.0);

    Counter live("hits");
    live += 7;
    reg.linkCounter("mem.l1.hits", live);
    ++live; // live stats stay live after registration

    EXPECT_EQ(reg.size(), 3u);
    EXPECT_TRUE(reg.has("mesa.offloads"));
    EXPECT_FALSE(reg.has("mesa.nope"));
    EXPECT_DOUBLE_EQ(reg.value("mesa.offloads"), 3.0);
    EXPECT_DOUBLE_EQ(reg.value("mesa.epoch.cycles_per_iter"), 3.0);
    EXPECT_DOUBLE_EQ(reg.value("mem.l1.hits"), 8.0);
    EXPECT_DOUBLE_EQ(reg.value("absent"), 0.0);
}

TEST(StatsRegistry, DuplicateAndPrefixPathsPanic)
{
    StatsRegistry reg;
    reg.counter("cpu.cycles");
    EXPECT_THROW(reg.counter("cpu.cycles"), PanicError);
    EXPECT_THROW(reg.average("cpu.cycles"), PanicError);
    // A leaf cannot also be an interior JSON node, in either order.
    EXPECT_THROW(reg.counter("cpu.cycles.retired"), PanicError);
    EXPECT_THROW(reg.counter("cpu"), PanicError);
    // Malformed paths.
    EXPECT_THROW(reg.counter(""), PanicError);
    EXPECT_THROW(reg.counter(".x"), PanicError);
    EXPECT_THROW(reg.counter("x."), PanicError);
    EXPECT_THROW(reg.counter("a..b"), PanicError);
    // Scalars may be re-set but not collide with other kinds.
    reg.scalar("run.speedup", 2.0);
    reg.scalar("run.speedup", 3.0);
    EXPECT_DOUBLE_EQ(reg.value("run.speedup"), 3.0);
    EXPECT_THROW(reg.scalar("cpu.cycles", 1.0), PanicError);
}

TEST(StatsRegistry, DumpAndJsonRenderTheTree)
{
    StatsRegistry reg;
    reg.counter("mesa.offloads") += 2;
    reg.scalar("run.total_cycles", 1234);
    Histogram &h = reg.histogram("mesa.epoch.cycles", 4, 10.0);
    h.sample(5.0);
    h.sample(35.0);

    std::ostringstream os;
    reg.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("mesa.offloads 2"), std::string::npos);
    EXPECT_NE(text.find("run.total_cycles 1234"), std::string::npos);
    EXPECT_NE(text.find("mesa.epoch.cycles.samples 2"),
              std::string::npos);

    JsonWriter w;
    reg.toJson(w);
    EXPECT_TRUE(w.balanced());
    const std::string json = w.str();
    // Dotted paths nest: mesa -> epoch -> cycles object.
    EXPECT_NE(json.find("\"mesa\":{"), std::string::npos);
    EXPECT_NE(json.find("\"offloads\":2"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":[1,0,0,1]"), std::string::npos);
    EXPECT_NE(json.find("\"total_cycles\":1234"), std::string::npos);
    EXPECT_NE(json.find("\"snapshots\":[]"), std::string::npos);
}

TEST(StatsRegistry, SnapshotsCaptureScalarViews)
{
    StatsRegistry reg;
    Counter &c = reg.counter("accel.iterations");
    c += 10;
    reg.snapshot("iter10");
    c += 10;
    reg.snapshot("iter20");
    EXPECT_EQ(reg.snapshotCount(), 2u);

    JsonWriter w;
    reg.toJson(w);
    const std::string json = w.str();
    EXPECT_NE(json.find("\"label\":\"iter10\""), std::string::npos);
    EXPECT_NE(json.find("\"accel.iterations\":10"), std::string::npos);
    EXPECT_NE(json.find("\"accel.iterations\":20"), std::string::npos);
}

TEST(StatsRegistry, MaterializeDetachesLinkedStats)
{
    StatsRegistry reg;
    {
        Counter live("hits");
        live += 5;
        reg.linkCounter("mem.hits", live);
        reg.materialize();
        live += 100; // no longer visible: the registry owns a copy
    } // linked object destroyed; registry must stay valid
    EXPECT_DOUBLE_EQ(reg.value("mem.hits"), 5.0);
}

TEST(StatsRegistry, ClearEmptiesEverything)
{
    StatsRegistry reg;
    reg.counter("a.b");
    reg.snapshot("s");
    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_EQ(reg.snapshotCount(), 0u);
    // Paths are reusable after clear().
    reg.counter("a.b");
    EXPECT_TRUE(reg.has("a.b"));
}

} // namespace
