/**
 * @file
 * Region-monitor and controller edge cases: C3 instruction-mix
 * rejection, equality-exit loops with unknowable trip counts, loops
 * that finish while MESA is still configuring (overlap abort), and
 * tiny-trip loops that never amortize.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "riscv/assembler.hh"

namespace
{

using namespace mesa;
using namespace mesa::test;
using namespace mesa::riscv::reg;
using riscv::Assembler;

constexpr uint32_t ArrA = 0x00100000;
constexpr uint32_t ArrB = 0x00200000;

std::optional<cpu::MonitorDecision>
monitorProgram(const riscv::Program &prog,
               const std::function<void(riscv::ArchState &)> &init,
               const cpu::MonitorParams &mp = {})
{
    mem::MainMemory memory;
    // Touch the data arrays so loads read zeroes deterministically.
    cpu::loadProgram(memory, prog);

    riscv::Emulator emu(memory);
    emu.reset(prog.base_pc);
    init(emu.state());

    cpu::RegionMonitor monitor(mp);
    std::optional<cpu::MonitorDecision> decision;
    emu.setObserver([&](const riscv::TraceEntry &te) {
        monitor.observe(te);
        if (!decision && monitor.decision())
            decision = monitor.decision();
    });
    uint64_t steps = 0;
    while (!emu.halted() && steps++ < 2'000'000 && !decision)
        emu.step();
    return decision;
}

TEST(MonitorEdges, MemoryOnlyLoopFailsC3Mix)
{
    // Eight loads, one induction, one branch: 80% memory.
    Assembler as;
    as.label("loop");
    for (int i = 0; i < 8; ++i)
        as.lw(uint8_t(t0 + (i % 3)), 4 * i, a0);
    as.addi(a0, a0, 32);
    as.blt(a0, a1, "loop");
    as.ecall();

    const auto decision =
        monitorProgram(as.assemble(), [](riscv::ArchState &st) {
            st.x[a0] = ArrA;
            st.x[a1] = ArrA + 32 * 4096;
        });
    ASSERT_TRUE(decision.has_value());
    EXPECT_FALSE(decision->qualified);
    EXPECT_EQ(decision->reason, cpu::RejectReason::PoorMix);
    EXPECT_GT(decision->mem_frac, 0.7);
}

TEST(MonitorEdges, EqualityExitGivesUnknownTripEstimate)
{
    // Exit via bne on a value loaded from memory: both operands static
    // across iterations except the induction; actually make BOTH
    // branch operands non-moving so the rate is zero -> unknown trip.
    Assembler as;
    as.label("loop");
    as.lw(t0, 0, a0);       // flag (stays 0 for a long time)
    as.add(t1, t1, t0);
    as.addi(a0, a0, 4);
    as.beq(t0, zero, "loop"); // loop while flag == 0
    as.ecall();

    const auto decision =
        monitorProgram(as.assemble(), [](riscv::ArchState &st) {
            st.x[a0] = ArrA; // zero-filled until a sentinel
        });
    // flag==0 forever (memory is zero) until... never; monitor gets 2
    // passes then must reject with FewIterations (no estimate).
    ASSERT_TRUE(decision.has_value());
    EXPECT_FALSE(decision->qualified);
    EXPECT_EQ(decision->reason, cpu::RejectReason::FewIterations);
    EXPECT_EQ(decision->est_remaining_iterations, 0u);
}

TEST(MonitorEdges, UnsignedCompareLoopEstimatesTrip)
{
    // A bltu-closed loop (pointers compare unsigned): the estimator's
    // gap/rate arithmetic must still project the remaining trip.
    Assembler as;
    as.label("loop");
    as.lw(t0, 0, a0);
    as.add(t1, t1, t0);
    as.sw(t1, 0, a1);
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 4);
    as.bltu(a0, a2, "loop");
    as.ecall();

    const auto decision =
        monitorProgram(as.assemble(), [](riscv::ArchState &st) {
            st.x[a0] = ArrA;
            st.x[a1] = ArrB;
            st.x[a2] = ArrA + 4 * 3000;
        });
    ASSERT_TRUE(decision.has_value());
    EXPECT_TRUE(decision->qualified);
    EXPECT_GT(decision->est_remaining_iterations, 2500u);
    EXPECT_LT(decision->est_remaining_iterations, 3001u);
}

TEST(MonitorEdges, ShortLoopNeverOffloadsButCompletes)
{
    // 30 iterations: below the 50-iteration amortization threshold.
    const auto kernel = workloads::makeKmeans(30);
    const GoldenResult want = runReference(kernel);

    mem::MainMemory memory;
    kernel.init_data(memory);
    core::MesaParams params;
    core::MesaController mesa(params, memory);
    const auto res = mesa.runTransparent(
        kernel.program, kernel.fullRange(), kernel.parallel);

    EXPECT_TRUE(res.halted);
    EXPECT_TRUE(res.offloads.empty());
    ASSERT_FALSE(res.rejections.empty());
    EXPECT_EQ(res.rejections.front().reason,
              cpu::RejectReason::FewIterations);
    EXPECT_TRUE(sameMemory(memory.snapshot(), want.memory));
    EXPECT_EQ(res.final_state, want.state);
}

TEST(MonitorEdges, LoopEndingDuringConfigurationAborts)
{
    // Trip count just above the monitor threshold: by the time the
    // monitor qualifies (2+ passes) and the CPU covers the overlap
    // iterations, the loop may already be done. Whatever happens, the
    // result must be exact and nothing may crash.
    for (uint64_t trip : {52u, 60u, 80u, 120u}) {
        const auto kernel = workloads::makeGaussian(trip);
        const GoldenResult want = runReference(kernel);

        mem::MainMemory memory;
        kernel.init_data(memory);
        core::MesaParams params;
        params.monitor.min_expected_iterations = 40;
        core::MesaController mesa(params, memory);
        const auto res = mesa.runTransparent(
            kernel.program, kernel.fullRange(), kernel.parallel);

        EXPECT_TRUE(res.halted) << trip;
        EXPECT_TRUE(sameMemory(memory.snapshot(), want.memory))
            << trip;
        EXPECT_EQ(res.final_state, want.state) << trip;
    }
}

TEST(MonitorEdges, BlacklistedRegionStaysOnCpuForever)
{
    // A kernel whose mapping always fails (FP ops, FP disabled in the
    // backend) is blacklisted after the first attempt; the program
    // still completes correctly with exactly one structural failure.
    const auto kernel = workloads::makeKmeans(4096);
    const GoldenResult want = runReference(kernel);

    mem::MainMemory memory;
    kernel.init_data(memory);
    core::MesaParams params;
    params.accel.fp_slices = false; // no PE supports FP
    core::MesaController mesa(params, memory);
    const auto res = mesa.runTransparent(
        kernel.program, kernel.fullRange(), kernel.parallel);

    EXPECT_TRUE(res.halted);
    EXPECT_TRUE(res.offloads.empty());
    EXPECT_TRUE(sameMemory(memory.snapshot(), want.memory));
    EXPECT_EQ(res.final_state, want.state);
}

TEST(MonitorEdges, TraceCachePartialFillBackfills)
{
    // A loop whose first monitored pass skips instructions (forward
    // branch) leaves trace-cache holes; backfill must complete it.
    const auto kernel = workloads::makeBfs(4096);
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());

    cpu::RegionMonitor monitor{cpu::MonitorParams{}};
    emu.setObserver(
        [&](const riscv::TraceEntry &te) { monitor.observe(te); });
    uint64_t steps = 0;
    while (!emu.halted() && steps++ < 500000) {
        emu.step();
        if (monitor.decision() && monitor.decision()->qualified)
            break;
    }
    ASSERT_TRUE(monitor.decision() && monitor.decision()->qualified);
    // The guarded store may never have committed during monitoring.
    monitor.traceCache().backfill(memory);
    EXPECT_TRUE(monitor.traceCache().complete());
    const auto body = monitor.traceCache().body();
    EXPECT_EQ(body.size(),
              size_t(kernel.loop_end - kernel.loop_start) / 4);
}

} // namespace
