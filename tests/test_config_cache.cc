/**
 * @file
 * ConfigCache unit tests: keyed-index LRU ordering, replace-in-place
 * recency, invalidation, eviction counting, and the stats-registry
 * wiring. Complements the two smoke tests in test_config.cc with the
 * ordering-sensitive cases the keyed index must preserve.
 */

#include <gtest/gtest.h>

#include "mesa/config_cache.hh"
#include "util/stats_registry.hh"

using namespace mesa;
using core::ConfigCache;

namespace
{

accel::AcceleratorConfig
cfg(uint32_t start, uint64_t words = 1)
{
    accel::AcceleratorConfig c;
    c.region_start = start;
    c.region_end = start + 0x40;
    c.config_words = words;
    return c;
}

} // namespace

TEST(ConfigCacheDetail, EvictionFollowsLruOrderExactly)
{
    ConfigCache cache(3);
    cache.insert(cfg(0x100));
    cache.insert(cfg(0x200));
    cache.insert(cfg(0x300));
    // Recency now 0x300 > 0x200 > 0x100. Touch 0x100: LRU is 0x200.
    EXPECT_NE(cache.lookup(0x100), nullptr);
    cache.insert(cfg(0x400)); // evicts 0x200
    EXPECT_EQ(cache.lookup(0x200), nullptr);
    EXPECT_NE(cache.lookup(0x300), nullptr);
    // Recency 0x300 > 0x400 > 0x100. Next eviction takes 0x100.
    cache.insert(cfg(0x500));
    EXPECT_EQ(cache.lookup(0x100), nullptr);
    EXPECT_EQ(cache.evictions(), 2u);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(ConfigCacheDetail, ReplaceInPlaceMovesToMruWithoutEviction)
{
    ConfigCache cache(2);
    cache.insert(cfg(0x100, 1));
    cache.insert(cfg(0x200, 1));
    // Re-inserting 0x100 updates the entry and makes it MRU.
    cache.insert(cfg(0x100, 42));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 0u);
    const auto *hit = cache.lookup(0x100);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->config_words, 42u);
    // 0x200 is LRU now, so the next insert drops it, not 0x100.
    cache.insert(cfg(0x300, 1));
    EXPECT_EQ(cache.lookup(0x200), nullptr);
    EXPECT_NE(cache.lookup(0x100), nullptr);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ConfigCacheDetail, InvalidateMiddleEntryKeepsOrdering)
{
    ConfigCache cache(3);
    cache.insert(cfg(0x100));
    cache.insert(cfg(0x200));
    cache.insert(cfg(0x300));
    cache.invalidate(0x200);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.lookup(0x200), nullptr);
    // Invalidation is not an eviction.
    EXPECT_EQ(cache.evictions(), 0u);
    // Room for one more without evicting.
    cache.insert(cfg(0x400));
    EXPECT_EQ(cache.evictions(), 0u);
    cache.insert(cfg(0x500)); // now over capacity: 0x100 is LRU
    EXPECT_EQ(cache.lookup(0x100), nullptr);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ConfigCacheDetail, InvalidateUnknownKeyIsANoOp)
{
    ConfigCache cache(2);
    cache.insert(cfg(0x100));
    cache.invalidate(0x999);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_NE(cache.lookup(0x100), nullptr);
}

TEST(ConfigCacheDetail, CountersFlowIntoStatsRegistry)
{
    ConfigCache cache(2);
    StatsRegistry stats;
    cache.registerStats(stats, "mesa.config_cache.");

    cache.lookup(0x100);       // miss
    cache.insert(cfg(0x100));
    cache.lookup(0x100);       // hit
    cache.insert(cfg(0x200));
    cache.insert(cfg(0x300));  // evicts 0x100

    // Linked by reference: the registry sees live values.
    EXPECT_EQ(stats.value("mesa.config_cache.hits"), 1.0);
    EXPECT_EQ(stats.value("mesa.config_cache.misses"), 1.0);
    EXPECT_EQ(stats.value("mesa.config_cache.evictions"), 1.0);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ConfigCacheDetail, BodyTagMismatchIsACountedConflictMiss)
{
    // Two different loop bodies assembled at the same base pc (the
    // service layer's shared-backend case): the pc alone matches but
    // the body CRC tag does not — the lookup must miss, count a tag
    // conflict, and let the subsequent insert replace the entry.
    ConfigCache cache(4);
    cache.insert(cfg(0x100), /*body_tag=*/0xAAAA);
    EXPECT_NE(cache.lookup(0x100, 0xAAAA), nullptr);
    EXPECT_EQ(cache.lookup(0x100, 0xBBBB), nullptr);
    EXPECT_EQ(cache.tagConflicts(), 1u);
    EXPECT_EQ(cache.misses(), 1u);

    cache.insert(cfg(0x100, 7), 0xBBBB); // Replace with the new body.
    EXPECT_EQ(cache.size(), 1u);
    const auto *hit = cache.lookup(0x100, 0xBBBB);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->config_words, 7u);
    // The old tag's config is gone.
    EXPECT_EQ(cache.lookup(0x100, 0xAAAA), nullptr);
    EXPECT_EQ(cache.tagConflicts(), 2u);
}

TEST(ConfigCacheDetail, DefaultTagPreservesUntaggedBehavior)
{
    ConfigCache cache(2);
    cache.insert(cfg(0x100));
    EXPECT_NE(cache.lookup(0x100), nullptr);
    EXPECT_EQ(cache.tagConflicts(), 0u);
}

TEST(ConfigCacheDetail, TagConflictsFlowIntoStatsRegistry)
{
    ConfigCache cache(2);
    StatsRegistry stats;
    cache.registerStats(stats, "cc.");
    cache.insert(cfg(0x100), 1);
    cache.lookup(0x100, 2);
    EXPECT_EQ(stats.value("cc.tag_conflicts"), 1.0);
}
