/**
 * @file
 * Functional emulator tests: arithmetic semantics, control flow,
 * memory accesses, FP operations, and trace observation.
 */

#include <gtest/gtest.h>

#include <bit>

#include "cpu/system.hh"
#include "riscv/assembler.hh"
#include "riscv/emulator.hh"

namespace
{

using namespace mesa;
using namespace mesa::riscv;
using namespace mesa::riscv::reg;

/** Assemble, load, and run a program; return the emulator. */
struct Harness
{
    mem::MainMemory memory;
    Emulator emu{memory};

    void
    run(const Assembler &as,
        const std::function<void(ArchState &)> &init = nullptr,
        uint64_t max_steps = 100000)
    {
        const Program prog = as.assemble();
        cpu::loadProgram(memory, prog);
        emu.reset(prog.base_pc);
        if (init)
            init(emu.state());
        emu.run(max_steps);
    }
};

TEST(Emulator, BasicArithmetic)
{
    Assembler as;
    as.li(a0, 20);
    as.li(a1, 22);
    as.add(a2, a0, a1);
    as.sub(a3, a0, a1);
    as.mul(a4, a0, a1);
    as.ecall();

    Harness h;
    h.run(as);
    EXPECT_EQ(h.emu.x(a2), 42u);
    EXPECT_EQ(int32_t(h.emu.x(a3)), -2);
    EXPECT_EQ(h.emu.x(a4), 440u);
}

TEST(Emulator, LiLargeConstants)
{
    Assembler as;
    as.li(a0, 0x12345678);
    as.li(a1, -123456);
    as.li(a2, 2047);
    as.li(a3, -2048);
    as.ecall();

    Harness h;
    h.run(as);
    EXPECT_EQ(h.emu.x(a0), 0x12345678u);
    EXPECT_EQ(int32_t(h.emu.x(a1)), -123456);
    EXPECT_EQ(h.emu.x(a2), 2047u);
    EXPECT_EQ(int32_t(h.emu.x(a3)), -2048);
}

TEST(Emulator, DivisionEdgeCases)
{
    Assembler as;
    as.li(a0, -8);
    as.li(a1, 0);
    as.div(a2, a0, a1);  // div by zero -> -1
    as.rem(a3, a0, a1);  // rem by zero -> dividend
    as.li(a4, 3);
    as.div(a5, a0, a4);  // -8 / 3 = -2 (trunc)
    as.rem(a6, a0, a4);  // -8 % 3 = -2
    as.ecall();

    Harness h;
    h.run(as);
    EXPECT_EQ(h.emu.x(a2), uint32_t(-1));
    EXPECT_EQ(int32_t(h.emu.x(a3)), -8);
    EXPECT_EQ(int32_t(h.emu.x(a5)), -2);
    EXPECT_EQ(int32_t(h.emu.x(a6)), -2);
}

TEST(Emulator, LoopSum)
{
    // sum = 0; for (i = 0; i < 10; ++i) sum += i;
    Assembler as;
    as.li(a0, 0);  // sum
    as.li(a1, 0);  // i
    as.li(a2, 10); // bound
    as.label("loop");
    as.add(a0, a0, a1);
    as.addi(a1, a1, 1);
    as.blt(a1, a2, "loop");
    as.ecall();

    Harness h;
    h.run(as);
    EXPECT_EQ(h.emu.x(a0), 45u);
    EXPECT_EQ(h.emu.x(a1), 10u);
}

TEST(Emulator, MemoryAccessWidths)
{
    Assembler as;
    as.li(a0, 0x2000);
    as.li(a1, -2);            // 0xFFFFFFFE
    as.sw(a1, 0, a0);
    as.lb(a2, 0, a0);         // sign-extended byte
    as.lbu(a3, 0, a0);        // zero-extended byte
    as.lh(a4, 0, a0);
    as.lhu(a5, 0, a0);
    as.lw(a6, 0, a0);
    as.ecall();

    Harness h;
    h.run(as);
    EXPECT_EQ(int32_t(h.emu.x(a2)), -2);
    EXPECT_EQ(h.emu.x(a3), 0xFEu);
    EXPECT_EQ(int32_t(h.emu.x(a4)), -2);
    EXPECT_EQ(h.emu.x(a5), 0xFFFEu);
    EXPECT_EQ(h.emu.x(a6), 0xFFFFFFFEu);
}

TEST(Emulator, FloatingPoint)
{
    Assembler as;
    as.li(a0, 0x2000);
    as.flw(ft0, 0, a0);
    as.flw(ft1, 4, a0);
    as.fadd_s(ft2, ft0, ft1);
    as.fmul_s(ft3, ft0, ft1);
    as.fsub_s(ft4, ft0, ft1);
    as.fdiv_s(ft5, ft0, ft1);
    as.fsqrt_s(ft6, ft0);
    as.fsw(ft2, 8, a0);
    as.ecall();

    Harness h;
    h.memory.writeFloat(0x2000, 9.0f);
    h.memory.writeFloat(0x2004, 2.0f);
    h.run(as);
    EXPECT_FLOAT_EQ(h.emu.fval(ft2), 11.0f);
    EXPECT_FLOAT_EQ(h.emu.fval(ft3), 18.0f);
    EXPECT_FLOAT_EQ(h.emu.fval(ft4), 7.0f);
    EXPECT_FLOAT_EQ(h.emu.fval(ft5), 4.5f);
    EXPECT_FLOAT_EQ(h.emu.fval(ft6), 3.0f);
    EXPECT_FLOAT_EQ(h.memory.readFloat(0x2008), 11.0f);
}

TEST(Emulator, FpCompareAndConvert)
{
    Assembler as;
    as.li(a0, 7);
    as.fcvt_s_w(ft0, a0);
    as.fcvt_w_s(a1, ft0);
    as.li(a2, 3);
    as.fcvt_s_w(ft1, a2);
    as.flt_s(a3, ft1, ft0); // 3 < 7 -> 1
    as.fle_s(a4, ft0, ft1); // 7 <= 3 -> 0
    as.feq_s(a5, ft0, ft0); // 7 == 7 -> 1
    as.ecall();

    Harness h;
    h.run(as);
    EXPECT_EQ(h.emu.x(a1), 7u);
    EXPECT_EQ(h.emu.x(a3), 1u);
    EXPECT_EQ(h.emu.x(a4), 0u);
    EXPECT_EQ(h.emu.x(a5), 1u);
}

TEST(Emulator, ForwardBranchSkips)
{
    Assembler as;
    as.li(a0, 1);
    as.li(a1, 5);
    as.beq(a0, a0, "skip"); // always taken
    as.li(a1, 99);          // skipped
    as.label("skip");
    as.addi(a1, a1, 1);
    as.ecall();

    Harness h;
    h.run(as);
    EXPECT_EQ(h.emu.x(a1), 6u);
}

TEST(Emulator, ObserverSeesCommittedStream)
{
    Assembler as;
    as.li(a0, 0);
    as.label("loop");
    as.addi(a0, a0, 1);
    as.slti(a1, a0, 3);
    as.bne(a1, zero, "loop");
    as.ecall();

    Harness h;
    uint64_t count = 0;
    uint64_t branches_taken = 0;
    h.emu.setObserver([&](const TraceEntry &te) {
        ++count;
        if (te.inst.isBranch() && te.branch_taken)
            ++branches_taken;
    });
    h.run(as);
    EXPECT_EQ(h.emu.x(a0), 3u);
    EXPECT_EQ(branches_taken, 2u);
    EXPECT_EQ(count, h.emu.instret());
}

TEST(Emulator, HaltsOnEcallAndInvalid)
{
    Assembler as;
    as.li(a0, 1);
    as.ecall();
    Harness h;
    h.run(as);
    EXPECT_TRUE(h.emu.halted());

    // Executing from empty memory halts immediately (invalid word).
    mem::MainMemory m2;
    Emulator e2(m2);
    e2.reset(0x9000);
    EXPECT_FALSE(e2.step());
    EXPECT_TRUE(e2.halted());
}

TEST(Emulator, RunWhileInRegion)
{
    Assembler as;
    as.li(a0, 0);          // pc 0x1000
    as.label("loop");      // 0x1004
    as.addi(a0, a0, 1);
    as.slti(a1, a0, 100);
    as.bne(a1, zero, "loop");
    as.ecall();

    Harness h;
    const Program prog = as.assemble();
    cpu::loadProgram(h.memory, prog);
    h.emu.reset(prog.base_pc);
    h.emu.step(); // execute li
    const uint32_t lo = prog.labelPc("loop");
    const uint32_t hi = lo + 3 * 4;
    h.emu.runWhileInRegion(lo, hi, 1000000);
    // Leaves the region only when the loop exits.
    EXPECT_EQ(h.emu.x(a0), 100u);
    EXPECT_FALSE(h.emu.halted());
}

} // namespace
