/**
 * @file
 * Workload-suite tests: every kernel assembles, runs to completion on
 * the emulator, computes plausible results, splits into chunks that
 * reproduce the sequential outcome, and carries consistent metadata.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hh"

namespace
{

using namespace mesa;
using namespace mesa::test;
using workloads::Kernel;
using workloads::rodiniaSuite;

class SuiteKernels : public ::testing::TestWithParam<std::string>
{
  protected:
    Kernel
    kernel() const
    {
        return workloads::kernelByName(GetParam(), {512});
    }
};

TEST_P(SuiteKernels, AssemblesAndDecodes)
{
    const Kernel k = kernel();
    EXPECT_FALSE(k.program.words.empty());
    EXPECT_GE(k.loop_end, k.loop_start + 4u);
    // Every word decodes to a valid instruction.
    for (const auto &inst : k.program.decodeAll()) {
        if (inst.pc + 4 == k.program.endPc())
            continue; // trailing ecall decodes as system
        EXPECT_NE(inst.op, riscv::Op::Invalid)
            << "at pc 0x" << std::hex << inst.pc;
    }
    // The loop body closes with a backward branch.
    const auto body = k.loopBody();
    ASSERT_FALSE(body.empty());
    EXPECT_TRUE(body.back().isBackwardBranch());
}

TEST_P(SuiteKernels, RunsToCompletion)
{
    const Kernel k = kernel();
    const GoldenResult res = runReference(k);
    EXPECT_GT(res.instructions, k.iterations)
        << "the hot loop must dominate the instruction count";
    // Ends at the ecall.
    EXPECT_GE(res.state.pc, k.loop_end);
}

TEST_P(SuiteKernels, ChunksReproduceSequentialResult)
{
    const Kernel k = kernel();
    if (!k.parallel)
        GTEST_SKIP() << "serial kernel";

    const GoldenResult want = runReference(k);

    mem::MainMemory memory;
    k.init_data(memory);
    cpu::loadProgram(memory, k.program);
    for (const auto &init : k.chunks(8)) {
        riscv::Emulator emu(memory);
        emu.reset(k.program.base_pc);
        init(emu.state());
        emu.run(20'000'000);
        EXPECT_TRUE(emu.halted());
    }
    EXPECT_TRUE(sameMemory(memory.snapshot(), want.memory));
}

INSTANTIATE_TEST_SUITE_P(
    All, SuiteKernels,
    ::testing::Values("nn", "kmeans", "hotspot", "cfd", "backprop",
                      "bfs", "srad", "lud", "pathfinder", "b+tree",
                      "streamcluster", "lavaMD", "gaussian",
                      "heartwall", "leukocyte", "hotspot3D"),
    [](const ::testing::TestParamInfo<std::string> &param_info) {
        std::string name = param_info.param;
        for (auto &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Suite, ContainsAllKernels)
{
    const auto suite = rodiniaSuite({256});
    EXPECT_EQ(suite.size(), 16u);
    int parallel = 0, fp = 0, unsupported = 0;
    for (const auto &k : suite) {
        parallel += k.parallel;
        fp += k.fp;
        unsupported += !k.mesa_supported;
    }
    EXPECT_GE(parallel, 11);
    EXPECT_GE(fp, 12);
    EXPECT_EQ(unsupported, 1); // b+tree
}

TEST(Suite, NnComputesEuclideanDistance)
{
    const Kernel k = workloads::makeNn(64);
    mem::MainMemory memory;
    k.init_data(memory);
    cpu::loadProgram(memory, k.program);
    riscv::Emulator emu(memory);
    emu.reset(k.program.base_pc);
    k.fullRange()(emu.state());
    emu.run(1'000'000);

    // Check element 5 against a host-computed reference.
    const float lat = memory.readFloat(0x00100000 + 4 * 5);
    const float lng = memory.readFloat(0x00200000 + 4 * 5);
    const float want = std::sqrt((lat - 37.4f) * (lat - 37.4f) +
                                 (lng + 122.1f) * (lng + 122.1f));
    const float got = memory.readFloat(0x00300000 + 4 * 5);
    EXPECT_FLOAT_EQ(got, want);
}

TEST(Suite, PathfinderComputesMinPlusCost)
{
    const Kernel k = workloads::makePathfinder(64);
    mem::MainMemory memory;
    k.init_data(memory);
    cpu::loadProgram(memory, k.program);

    // Host reference for element 7.
    const uint32_t p0 = memory.read32(0x00100000 + 4 * 7);
    const uint32_t p1 = memory.read32(0x00100000 + 4 * 8);
    const uint32_t p2 = memory.read32(0x00100000 + 4 * 9);
    const uint32_t cost = memory.read32(0x00200000 + 4 * 7);
    const uint32_t want = std::min({p0, p1, p2}) + cost;

    riscv::Emulator emu(memory);
    emu.reset(k.program.base_pc);
    k.fullRange()(emu.state());
    emu.run(1'000'000);
    EXPECT_EQ(memory.read32(0x00300000 + 4 * 7), want);
}

TEST(Suite, BfsMarksReachableNodes)
{
    const Kernel k = workloads::makeBfs(256);
    mem::MainMemory memory;
    k.init_data(memory);
    cpu::loadProgram(memory, k.program);
    riscv::Emulator emu(memory);
    emu.reset(k.program.base_pc);
    k.fullRange()(emu.state());
    emu.run(1'000'000);

    // Every edge destination must now be visited.
    for (uint64_t i = 0; i < 256; ++i) {
        const uint32_t dst = memory.read32(0x00100000 + uint32_t(4 * i));
        EXPECT_NE(memory.read32(0x00200000 + 4 * dst), 0u);
    }
}

TEST(Suite, HeartwallComputesNormalizedCorrelation)
{
    const Kernel k = workloads::makeHeartwall(64);
    mem::MainMemory memory;
    k.init_data(memory);
    cpu::loadProgram(memory, k.program);

    // Host reference for element 9.
    const float f = memory.readFloat(0x00100000 + 4 * 9) - 127.5f;
    const float t = memory.readFloat(0x00200000 + 4 * 9) - 127.5f;
    const float want = (f * t) / std::sqrt((f * f + 0.5f) * (t * t));

    riscv::Emulator emu(memory);
    emu.reset(k.program.base_pc);
    k.fullRange()(emu.state());
    emu.run(1'000'000);
    EXPECT_FLOAT_EQ(memory.readFloat(0x00300000 + 4 * 9), want);
}

TEST(Suite, LeukocyteComputesDirectionalDerivative)
{
    const Kernel k = workloads::makeLeukocyte(64);
    mem::MainMemory memory;
    k.init_data(memory);
    cpu::loadProgram(memory, k.program);

    const float gx = memory.readFloat(0x00100000 + 8 * 3);
    const float gy = memory.readFloat(0x00100000 + 8 * 3 + 4);
    const float sin_t = memory.readFloat(0x00200000 + 8 * 3);
    const float cos_t = memory.readFloat(0x00200000 + 8 * 3 + 4);
    const float want = gx * cos_t + gy * sin_t;

    riscv::Emulator emu(memory);
    emu.reset(k.program.base_pc);
    k.fullRange()(emu.state());
    emu.run(1'000'000);
    EXPECT_FLOAT_EQ(memory.readFloat(0x00300000 + 8 * 3), want);
    EXPECT_FLOAT_EQ(memory.readFloat(0x00300000 + 8 * 3 + 4),
                    want * want);
}

TEST(Suite, GaussianEliminatesRow)
{
    const Kernel k = workloads::makeGaussian(64);
    mem::MainMemory memory;
    k.init_data(memory);
    cpu::loadProgram(memory, k.program);

    const float a5 = memory.readFloat(0x00100000 + 4 * 5);
    const float b5 = memory.readFloat(0x00200000 + 4 * 5);
    const float want = a5 - 0.75f * b5;

    riscv::Emulator emu(memory);
    emu.reset(k.program.base_pc);
    k.fullRange()(emu.state());
    emu.run(1'000'000);
    EXPECT_FLOAT_EQ(memory.readFloat(0x00100000 + 4 * 5), want);
}

TEST(Suite, HotspotStencilMatchesHostMath)
{
    const Kernel k = workloads::makeHotspot(64);
    mem::MainMemory memory;
    k.init_data(memory);
    cpu::loadProgram(memory, k.program);

    const uint32_t T = 0x00100000, P = 0x00200000;
    const int i = 7; // interior element (offset by padding)
    const float c = memory.readFloat(T + 4 * (i + 1));
    const float w = memory.readFloat(T + 4 * i);
    const float e = memory.readFloat(T + 4 * (i + 2));
    const float p = memory.readFloat(P + 4 * (i + 1));
    const float want = c + 0.1f * (w + e - 2.0f * c) + p;

    riscv::Emulator emu(memory);
    emu.reset(k.program.base_pc);
    k.fullRange()(emu.state());
    emu.run(1'000'000);
    EXPECT_FLOAT_EQ(memory.readFloat(0x00300000 + 4 * (i + 1)), want);
}

TEST(Suite, BackpropAccumulatesDotProduct)
{
    const Kernel k = workloads::makeBackprop(128);
    mem::MainMemory memory;
    k.init_data(memory);
    cpu::loadProgram(memory, k.program);

    float want = 0.0f;
    for (int i = 0; i < 128; ++i) {
        want += memory.readFloat(0x00100000 + uint32_t(4 * i)) *
                memory.readFloat(0x00200000 + uint32_t(4 * i));
    }

    riscv::Emulator emu(memory);
    emu.reset(k.program.base_pc);
    k.fullRange()(emu.state());
    emu.run(1'000'000);
    EXPECT_FLOAT_EQ(memory.readFloat(0x00300000), want);
}

} // namespace
