/**
 * @file
 * Cross-cutting execution scenarios beyond the Rodinia suite: nested
 * predication, decreasing (negative-stride) inductions with tiling,
 * iteration counts that don't divide the tile factor, and programs
 * with multiple hot regions offloaded in one transparent run.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "riscv/assembler.hh"

namespace
{

using namespace mesa;
using namespace mesa::test;
using namespace mesa::riscv::reg;
using core::MesaParams;
using riscv::Assembler;

constexpr uint32_t ArrA = 0x00100000;
constexpr uint32_t ArrB = 0x00200000;

/** Build a Kernel from an assembler + setup lambdas. */
workloads::Kernel
makeKernel(const Assembler &as, uint64_t iterations, bool parallel,
           std::function<void(mem::MainMemory &)> init_data,
           std::function<void(riscv::ArchState &, uint64_t, uint64_t)>
               init_range)
{
    workloads::Kernel k;
    k.name = "scenario";
    k.parallel = parallel;
    k.iterations = iterations;
    k.program = as.assemble();
    k.loop_start = k.program.labelPc("loop");
    k.loop_end = k.program.labelPc("exit");
    k.init_data = std::move(init_data);
    k.init_range = std::move(init_range);
    return k;
}

// ---------------------------------------------------------------------
// Nested predication: an if inside an if, both mapped as guards.
// ---------------------------------------------------------------------

workloads::Kernel
nestedIfKernel(uint64_t n)
{
    Assembler as;
    as.label("loop");
    as.lw(t0, 0, a0);
    as.bne(t0, zero, "skip_all");  // outer guard
    as.lw(t1, 4, a0);
    as.beq(t1, zero, "skip_inner"); // inner guard (nested)
    as.addi(t2, t2, 1);             // under both guards
    as.sw(t2, 0, a1);
    as.label("skip_inner");
    as.addi(t3, t3, 2);             // under the outer guard only
    as.sw(t3, 4, a1);
    as.label("skip_all");
    as.addi(a0, a0, 8);
    as.addi(a1, a1, 8);
    as.blt(a0, a3, "loop");
    as.label("exit");
    as.ecall();

    return makeKernel(
        as, n, /*parallel=*/false,
        [n](mem::MainMemory &m) {
            uint32_t s = 31;
            for (uint64_t i = 0; i < 2 * n; ++i) {
                s = s * 1664525u + 1013904223u;
                m.write32(ArrA + uint32_t(4 * i), (s >> 20) % 3);
            }
        },
        [](riscv::ArchState &st, uint64_t b, uint64_t e) {
            st.x[a0] = ArrA + uint32_t(8 * b);
            st.x[a1] = ArrB + uint32_t(8 * b);
            st.x[a3] = ArrA + uint32_t(8 * e);
            st.x[t2] = 0;
            st.x[t3] = 0;
        });
}

TEST(Scenarios, NestedPredicationGuardsNest)
{
    const auto kernel = nestedIfKernel(64);
    auto ldfg = dfg::Ldfg::build(kernel.loopBody());
    ASSERT_TRUE(ldfg.has_value());
    // The innermost block carries two guards, the middle one carries
    // one, the join region none.
    int two_guards = 0, one_guard = 0;
    for (const auto &node : ldfg->nodes()) {
        if (node.guards.size() == 2)
            ++two_guards;
        else if (node.guards.size() == 1)
            ++one_guard;
    }
    EXPECT_EQ(two_guards, 2); // addi t2 + sw t2
    EXPECT_EQ(one_guard, 4);  // lw t1 + inner branch + addi t3 + sw t3
}

TEST(Scenarios, NestedPredicationGolden)
{
    const auto kernel = nestedIfKernel(512);
    const GoldenResult want = runReference(kernel);

    MesaParams params;
    params.iterative_optimization = false;
    const OffloadRun run = runWithOffload(kernel, params);
    ASSERT_TRUE(run.stats.has_value());
    EXPECT_GT(run.stats->accel.disabled_ops, 0u);
    EXPECT_TRUE(sameMemory(run.memory, want.memory));
    EXPECT_EQ(run.state, want.state);
}

// ---------------------------------------------------------------------
// Decreasing induction (negative stride) with tiling.
// ---------------------------------------------------------------------

workloads::Kernel
reverseCopyKernel(uint64_t n)
{
    Assembler as;
    as.label("loop");
    as.lw(t0, -4, a0);
    as.addi(t0, t0, 100);
    as.sw(t0, -4, a1);
    as.addi(a0, a0, -4);
    as.addi(a1, a1, -4);
    as.blt(a2, a0, "loop"); // continue while bound < cursor
    as.label("exit");
    as.ecall();

    return makeKernel(
        as, n, /*parallel=*/true,
        [n](mem::MainMemory &m) {
            for (uint64_t i = 0; i < n; ++i)
                m.write32(ArrA + uint32_t(4 * i), uint32_t(7 * i + 1));
        },
        [](riscv::ArchState &st, uint64_t b, uint64_t e) {
            // Iterate from the high end downward over [b, e).
            st.x[a0] = ArrA + uint32_t(4 * e);
            st.x[a1] = ArrB + uint32_t(4 * e);
            st.x[a2] = ArrA + uint32_t(4 * b);
        });
}

TEST(Scenarios, NegativeStrideInductionDetected)
{
    const auto kernel = reverseCopyKernel(64);
    auto ldfg = dfg::Ldfg::build(kernel.loopBody());
    ASSERT_TRUE(ldfg.has_value());
    const auto inductions = dfg::findInductionRegs(*ldfg);
    ASSERT_EQ(inductions.size(), 2u);
    EXPECT_EQ(inductions[0].step, -4);
}

TEST(Scenarios, NegativeStrideTiledGolden)
{
    const auto kernel = reverseCopyKernel(1024);
    const GoldenResult want = runReference(kernel);

    MesaParams params;
    params.iterative_optimization = false;
    const OffloadRun run = runWithOffload(kernel, params);
    ASSERT_TRUE(run.stats.has_value());
    EXPECT_GT(run.stats->tile_factor, 1)
        << "a 7-instruction body should tile";
    EXPECT_TRUE(sameMemory(run.memory, want.memory));
    // Decreasing induction merges by max (closest to sequential exit).
    EXPECT_EQ(run.state.x[a0], want.state.x[a0]);
    EXPECT_EQ(run.state.x[a1], want.state.x[a1]);
}

// ---------------------------------------------------------------------
// Trip counts that do not divide the tile factor.
// ---------------------------------------------------------------------

TEST(Scenarios, OddTripCountsAcrossTileFactors)
{
    for (uint64_t trip : {509u, 510u, 511u, 513u, 515u}) {
        const auto kernel = workloads::makeNn(trip);
        const GoldenResult want = runReference(kernel);
        MesaParams params;
        params.iterative_optimization = false;
        const OffloadRun run = runWithOffload(kernel, params);
        ASSERT_TRUE(run.stats.has_value()) << trip;
        EXPECT_EQ(run.stats->accel_iterations, trip) << trip;
        EXPECT_TRUE(sameMemory(run.memory, want.memory)) << trip;
        EXPECT_EQ(run.state, want.state) << trip;
    }
}

// ---------------------------------------------------------------------
// Narrow (byte/halfword) memory accesses through the accelerator LSU,
// including a same-address byte store -> byte load in one iteration
// (the partial-width forwarding/invalidation path).
// ---------------------------------------------------------------------

workloads::Kernel
thresholdKernel(uint64_t n)
{
    Assembler as;
    as.label("loop");
    as.lbu(t0, 0, a0);          // 8-bit pixel
    as.addi(t2, zero, 255);
    as.sltiu(t1, t0, 128);
    as.beq(t1, zero, "keep");   // keep 255 for bright pixels
    as.addi(t2, zero, 0);       // dark -> 0 (predicated)
    as.label("keep");
    as.sb(t2, 0, a1);           // byte store
    as.lbu(t4, 0, a1);          // read it back (store->load, byte)
    as.add(t5, t5, t4);         // running sum (loop-carried)
    as.lh(t3, 0, a2);           // signed halfword load
    as.srai(t3, t3, 1);
    as.sh(t3, 0, a3);           // halfword store
    as.addi(a0, a0, 1);         // byte-stride induction
    as.addi(a1, a1, 1);
    as.addi(a2, a2, 2);
    as.addi(a3, a3, 2);
    as.blt(a0, a4, "loop");
    as.label("exit");
    as.ecall();

    return makeKernel(
        as, n, /*parallel=*/false, // t5 reduction
        [n](mem::MainMemory &m) {
            uint32_t s = 55;
            for (uint64_t i = 0; i < n; ++i) {
                s = s * 1664525u + 1013904223u;
                m.write8(ArrA + uint32_t(i), uint8_t(s >> 13));
                m.write16(ArrB + uint32_t(2 * i), uint16_t(s >> 9));
            }
        },
        [](riscv::ArchState &st, uint64_t b, uint64_t e) {
            st.x[a0] = ArrA + uint32_t(b);
            st.x[a1] = ArrA + 0x80000 + uint32_t(b);
            st.x[a2] = ArrB + uint32_t(2 * b);
            st.x[a3] = ArrB + 0x80000 + uint32_t(2 * b);
            st.x[a4] = ArrA + uint32_t(e);
            st.x[t5] = 0;
        });
}

TEST(Scenarios, NarrowAccessGolden)
{
    const auto kernel = thresholdKernel(1024);
    const GoldenResult want = runReference(kernel);

    MesaParams params;
    params.iterative_optimization = false;
    const OffloadRun run = runWithOffload(kernel, params);
    ASSERT_TRUE(run.stats.has_value());
    EXPECT_TRUE(sameMemory(run.memory, want.memory));
    EXPECT_EQ(run.state, want.state)
        << "byte/halfword paths must be exact (incl. the running sum "
           "through the store->load pair)";
}

TEST(Scenarios, NarrowAccessEveryOptimizationCombo)
{
    const auto kernel = thresholdKernel(256);
    const GoldenResult want = runReference(kernel);
    for (int mask = 0; mask < 8; ++mask) {
        MesaParams params;
        params.iterative_optimization = false;
        params.enable_vectorization = mask & 1;
        params.enable_forwarding = mask & 2;
        params.enable_prefetch = mask & 4;
        const OffloadRun run = runWithOffload(kernel, params);
        ASSERT_TRUE(run.stats.has_value()) << mask;
        EXPECT_TRUE(sameMemory(run.memory, want.memory)) << mask;
        EXPECT_EQ(run.state, want.state) << mask;
    }
}

// ---------------------------------------------------------------------
// Two hot regions in one program, offloaded in one transparent run.
// ---------------------------------------------------------------------

TEST(Scenarios, TwoPhaseProgramOffloadsBothRegions)
{
    // Phase 1: integer scale+bias over ArrA; phase 2: prefix-style
    // FP accumulate over the result into ArrB.
    constexpr uint32_t N = 3000;
    Assembler as;
    as.label("loop1");
    as.lw(t0, 0, a0);
    as.slli(t0, t0, 1);
    as.addi(t0, t0, 3);
    as.sw(t0, 0, a1);
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 4);
    as.blt(a0, a2, "loop1");
    // Reset cursors for phase 2.
    as.li(a0, int32_t(ArrB));
    as.li(a1, int32_t(ArrB + 4 * N));
    as.label("loop2");
    as.lw(t0, 0, a0);
    as.fcvt_s_w(ft0, t0);
    as.fmul_s(ft0, ft0, fa0);
    as.fadd_s(ft1, ft1, ft0); // running FP sum (serial)
    as.addi(a0, a0, 4);
    as.blt(a0, a1, "loop2");
    as.label("exit");
    as.fsw(ft1, 0, a3);
    as.ecall();
    const riscv::Program prog = as.assemble();

    auto init_data = [&](mem::MainMemory &m) {
        for (uint32_t i = 0; i < N; ++i)
            m.write32(ArrA + 4 * i, i % 97);
    };
    auto init_regs = [&](riscv::ArchState &st) {
        st.x[a0] = ArrA;
        st.x[a1] = ArrB;
        st.x[a2] = ArrA + 4 * N;
        st.x[a3] = ArrB + 4 * N + 64;
        st.f[fa0] = std::bit_cast<uint32_t>(0.125f);
        st.f[ft1] = 0;
    };

    // Reference.
    mem::MainMemory ref_mem;
    init_data(ref_mem);
    cpu::loadProgram(ref_mem, prog);
    riscv::Emulator ref(ref_mem);
    ref.reset(prog.base_pc);
    init_regs(ref.state());
    ref.run(10'000'000);

    // Transparent MESA run.
    mem::MainMemory memory;
    init_data(memory);
    MesaParams params;
    core::MesaController mesa(params, memory);
    const auto res =
        mesa.runTransparent(prog, init_regs, /*parallel_hint=*/true);

    EXPECT_TRUE(res.halted);
    ASSERT_EQ(res.offloads.size(), 2u)
        << "both hot loops must be detected and offloaded";
    EXPECT_EQ(res.offloads[0].region_start, prog.labelPc("loop1"));
    EXPECT_EQ(res.offloads[1].region_start, prog.labelPc("loop2"));
    EXPECT_TRUE(sameMemory(memory.snapshot(), ref_mem.snapshot()));
    EXPECT_EQ(res.final_state, ref.state());
}

} // namespace
