/**
 * @file
 * LDFG construction tests: renaming, dependencies, live-ins/outs,
 * predication guards, build errors, and the paper's Fig. 2 latency
 * example (15 cycles, {i1, i4, i5} critical).
 */

#include <gtest/gtest.h>

#include "dfg/analysis.hh"
#include "dfg/latency.hh"
#include "dfg/ldfg.hh"
#include "dfg/sdfg.hh"
#include "riscv/assembler.hh"

namespace
{

using namespace mesa;
using namespace mesa::dfg;
using namespace mesa::riscv;
using namespace mesa::riscv::reg;

std::vector<Instruction>
loopBody(const Assembler &as, const char *start_label = "loop")
{
    const Program prog = as.assemble();
    const uint32_t lo = prog.labelPc(start_label);
    std::vector<Instruction> body;
    for (const auto &inst : prog.decodeAll())
        if (inst.pc >= lo)
            body.push_back(inst);
    return body;
}

TEST(Ldfg, RenameBuildsEdges)
{
    Assembler as;
    as.label("loop");
    as.add(a2, a0, a1);   // i0: reads live-ins a0, a1
    as.add(a3, a2, a0);   // i1: reads i0's output and live-in a0
    as.add(a2, a3, a3);   // i2: redefines a2 from i1
    as.addi(a0, a0, 1);   // i3: induction
    as.blt(a0, a4, "loop");
    auto body = loopBody(as);

    BuildError err;
    auto g = Ldfg::build(body, {}, 0, &err);
    ASSERT_TRUE(g.has_value()) << buildErrorName(err);
    ASSERT_EQ(g->size(), 5u);

    EXPECT_EQ(g->node(0).src1, NoNode);
    EXPECT_EQ(g->node(0).live_in1, a0);
    EXPECT_EQ(g->node(0).live_in2, a1);

    EXPECT_EQ(g->node(1).src1, 0);
    EXPECT_EQ(g->node(1).live_in2, a0);

    EXPECT_EQ(g->node(2).src1, 1);
    EXPECT_EQ(g->node(2).src2, 1);

    // prev writer of a2 for i2 is i0 (but i2 is unguarded so the
    // hidden dep is recorded but adds no consumer edge).
    EXPECT_EQ(g->node(2).prev_dest_writer, 0);

    // The branch reads the induction update (i3) and live-in a4.
    EXPECT_EQ(g->node(4).src1, 3);
    EXPECT_EQ(g->node(4).live_in2, a4);

    // Live-ins: a0, a1, a4.
    EXPECT_TRUE(g->liveIns().count(a0));
    EXPECT_TRUE(g->liveIns().count(a1));
    EXPECT_TRUE(g->liveIns().count(a4));
    EXPECT_FALSE(g->liveIns().count(a2));

    // Live-outs: final writers.
    EXPECT_EQ(g->finalRename().lookup(a2), 2);
    EXPECT_EQ(g->finalRename().lookup(a0), 3);
}

TEST(Ldfg, GuardsFromForwardBranch)
{
    Assembler as;
    as.label("loop");
    as.lw(t0, 0, a0);          // i0
    as.bne(t0, zero, "skip");  // i1: forward branch
    as.addi(t1, t1, 5);        // i2: guarded
    as.sw(t1, 0, a1);          // i3: guarded
    as.label("skip");
    as.addi(a0, a0, 4);        // i4: not guarded (join point)
    as.blt(a0, a2, "loop");    // i5
    auto body = loopBody(as);

    auto g = Ldfg::build(body);
    ASSERT_TRUE(g.has_value());
    EXPECT_TRUE(g->node(2).isGuarded());
    EXPECT_EQ(g->node(2).guards.front(), 1);
    EXPECT_TRUE(g->node(3).isGuarded());
    EXPECT_FALSE(g->node(4).isGuarded());
    EXPECT_FALSE(g->node(5).isGuarded());

    // Guarded t1 writer records its hidden dependency: t1 was a
    // live-in before i2.
    EXPECT_EQ(g->node(2).prev_dest_live_in, t1);
    EXPECT_TRUE(g->liveIns().count(t1));
}

TEST(Ldfg, BuildErrors)
{
    BuildError err;

    {
        // Inner loop: backward branch before the end.
        Assembler as;
        as.label("inner");
        as.addi(a0, a0, 1);
        as.blt(a0, a1, "inner");
        as.addi(a2, a2, 1);
        as.blt(a2, a3, "inner"); // closing branch (target differs but
                                 // the first backward branch is inner)
        auto body = loopBody(as, "inner");
        EXPECT_FALSE(Ldfg::build(body, {}, 0, &err).has_value());
        EXPECT_EQ(err, BuildError::InnerLoop);
    }
    {
        // System instruction inside the body.
        Assembler as;
        as.label("loop");
        as.ecall();
        as.addi(a0, a0, 1);
        as.blt(a0, a1, "loop");
        auto body = loopBody(as);
        EXPECT_FALSE(Ldfg::build(body, {}, 0, &err).has_value());
        EXPECT_EQ(err, BuildError::UnsupportedOp);
    }
    {
        // Indirect jump.
        Assembler as;
        as.label("loop");
        as.jalr(zero, a5, 0);
        as.addi(a0, a0, 1);
        as.blt(a0, a1, "loop");
        auto body = loopBody(as);
        EXPECT_FALSE(Ldfg::build(body, {}, 0, &err).has_value());
        EXPECT_EQ(err, BuildError::IndirectJump);
    }
    {
        // Capacity.
        Assembler as;
        as.label("loop");
        for (int i = 0; i < 10; ++i)
            as.addi(a0, a0, 1);
        as.blt(a0, a1, "loop");
        auto body = loopBody(as);
        EXPECT_FALSE(Ldfg::build(body, {}, 8, &err).has_value());
        EXPECT_EQ(err, BuildError::TooManyInstructions);
    }
}

/**
 * The paper's Fig. 2 example: five instructions, add/sub = 3 cycles,
 * mul = 5 cycles, transfer = Manhattan distance. With the paper's
 * placement the sequence completes in 15 cycles and {i1, i4, i5} is
 * the critical path.
 *
 * Graph (paper): i1: add (inputs ready)
 *                i2: mul, depends on i1
 *                i3: sub (inputs ready)
 *                i4: mul, depends on i1 and i3
 *                i5: add, depends on i4 (and i2)
 */
TEST(Ldfg, PaperFig2LatencyExample)
{
    // Build the DFG directly with FP ops so add/sub = 3 and mul = 5
    // under the default latency config.
    Assembler as;
    as.label("loop");
    as.fadd_s(ft0, fa0, fa1);  // i1 (node 0)
    as.fmul_s(ft1, ft0, fa2);  // i2 (node 1): depends on i1
    as.fsub_s(ft2, fa3, fa4);  // i3 (node 2)
    as.fmul_s(ft3, ft0, ft2);  // i4 (node 3): depends on i1, i3
    as.fadd_s(ft4, ft3, ft1);  // i5 (node 4): depends on i4, i2
    as.addi(a0, a0, 1);
    as.blt(a0, a1, "loop");
    auto body = loopBody(as);

    auto g = Ldfg::build(body);
    ASSERT_TRUE(g.has_value());

    // Place on a mesh exactly as in the figure: i1(0,0) i2(0,1)
    // i3(1,0) i4(1,1) i5(1,2).
    Sdfg sdfg(4, 4);
    ASSERT_TRUE(sdfg.place(0, {0, 0}));
    ASSERT_TRUE(sdfg.place(1, {0, 1}));
    ASSERT_TRUE(sdfg.place(2, {1, 0}));
    ASSERT_TRUE(sdfg.place(3, {1, 1}));
    ASSERT_TRUE(sdfg.place(4, {1, 2}));
    sdfg.place(5, {2, 0});
    sdfg.place(6, {2, 1});

    ic::MeshInterconnect mesh;
    LatencyModel model(*g, sdfg, mesh);
    const LatencyResult res = model.evaluate();

    // Eq. 1 arithmetic for this placement (paper's latencies:
    // add/sub 3, mul 5; transfer = Manhattan distance):
    //   i1 = 3 (inputs ready)
    //   i2 = (3 + 1) + 5 = 9   (neighbor of i1)
    //   i3 = 3
    //   i4 = max(3 + 2, 3 + 1) + 5 = 10  (diagonal from i1 costs 2)
    //   i5 = max(10 + 1, 9 + 2) + 3 = 14
    // The paper's 15-cycle table uses its own figure layout; the
    // invariant checked here is the latency model itself, and that
    // {i1, i4, i5} forms the critical path.
    EXPECT_DOUBLE_EQ(res.completion[0], 3.0);
    EXPECT_DOUBLE_EQ(res.completion[1], 9.0);
    EXPECT_DOUBLE_EQ(res.completion[2], 3.0);
    EXPECT_DOUBLE_EQ(res.completion[3], 10.0);
    EXPECT_DOUBLE_EQ(res.completion[4],
                     std::max(10.0 + 1.0, 9.0 + 2.0) + 3.0);

    // {i1, i4, i5} lies on the critical path, as in the paper.
    const auto &cp = res.critical_path;
    EXPECT_NE(std::find(cp.begin(), cp.end(), 0), cp.end());
    EXPECT_NE(std::find(cp.begin(), cp.end(), 3), cp.end());
    EXPECT_NE(std::find(cp.begin(), cp.end(), 4), cp.end());

    // Critical path ends at the sequence maximum.
    EXPECT_EQ(res.total,
              *std::max_element(res.completion.begin(),
                                res.completion.end()));
    ASSERT_FALSE(res.critical_path.empty());
    // The path is connected source-to-sink: each hop is a real edge.
    for (size_t i = 1; i < res.critical_path.size(); ++i) {
        const auto &node = g->node(res.critical_path[i]);
        const NodeId prev = res.critical_path[i - 1];
        const bool connected =
            node.src1 == prev || node.src2 == prev ||
            node.prev_dest_writer == prev ||
            std::find(node.guards.begin(), node.guards.end(), prev) !=
                node.guards.end();
        EXPECT_TRUE(connected);
    }
}

TEST(Ldfg, MeasuredEdgeWeightsOverrideModel)
{
    Assembler as;
    as.label("loop");
    as.fadd_s(ft0, fa0, fa1);
    as.fmul_s(ft1, ft0, fa2);
    as.addi(a0, a0, 1);
    as.blt(a0, a1, "loop");
    auto body = loopBody(as);
    auto g = Ldfg::build(body);
    ASSERT_TRUE(g.has_value());

    Sdfg sdfg(4, 4);
    sdfg.place(0, {0, 0});
    sdfg.place(1, {0, 1});
    sdfg.place(2, {1, 0});
    sdfg.place(3, {1, 1});

    ic::MeshInterconnect mesh;
    LatencyModel model(*g, sdfg, mesh);
    const double base = model.evaluate().completion[1];

    // A measured 6-cycle transfer (contention) replaces the 1-cycle
    // model on edge (0 -> 1).
    g->node(1).edge_lat1 = 6.0;
    const double measured = model.evaluate().completion[1];
    EXPECT_DOUBLE_EQ(measured, base + 5.0);
}

TEST(Analysis, InductionAndVectorGroups)
{
    Assembler as;
    as.label("loop");
    as.lw(t0, 0, a0);
    as.lw(t1, 4, a0);
    as.lw(t2, 8, a0);
    as.add(t0, t0, t1);
    as.add(t0, t0, t2);
    as.sw(t0, 0, a1);
    as.addi(a0, a0, 12);
    as.addi(a1, a1, 4);
    as.blt(a0, a2, "loop");
    auto body = loopBody(as);
    auto g = Ldfg::build(body);
    ASSERT_TRUE(g.has_value());

    const auto inductions = findInductionRegs(*g);
    ASSERT_EQ(inductions.size(), 2u);
    EXPECT_EQ(inductions[0].unified_reg, a0);
    EXPECT_EQ(inductions[0].step, 12);
    EXPECT_EQ(inductions[1].unified_reg, a1);
    EXPECT_EQ(inductions[1].step, 4);

    const auto groups = findVectorGroups(*g);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].loads.size(), 3u);
    EXPECT_EQ(groups[0].stride(), 4);

    const auto prefetchable = findPrefetchableLoads(*g);
    EXPECT_EQ(prefetchable.size(), 3u);

    const auto branch = analyzeLoopBranch(*g);
    ASSERT_TRUE(branch.has_value());
    ASSERT_TRUE(branch->induction.has_value());
    EXPECT_EQ(branch->induction->unified_reg, a0);
    EXPECT_EQ(branch->bound_reg, a2);
}

TEST(Analysis, ForwardPairs)
{
    Assembler as;
    as.label("loop");
    as.lw(t0, 0, a0);
    as.addi(t0, t0, 1);
    as.sw(t0, 0, a1);   // i2: store to 0(a1)
    as.lw(t1, 0, a1);   // i3: load from the same base+offset
    as.add(t2, t1, t0);
    as.sw(t2, 4, a1);
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 8);
    as.blt(a0, a2, "loop");
    auto body = loopBody(as);
    auto g = Ldfg::build(body);
    ASSERT_TRUE(g.has_value());

    const auto pairs = findForwardPairs(*g);
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_EQ(pairs[0].store, 2);
    EXPECT_EQ(pairs[0].load, 3);
}

TEST(Analysis, GuardedAddiIsNotInduction)
{
    Assembler as;
    as.label("loop");
    as.lw(t0, 0, a0);
    as.bne(t0, zero, "skip");
    as.addi(a1, a1, 4); // conditionally updated: not affine
    as.label("skip");
    as.addi(a0, a0, 4);
    as.blt(a0, a2, "loop");
    auto body = loopBody(as);
    auto g = Ldfg::build(body);
    ASSERT_TRUE(g.has_value());

    const auto inductions = findInductionRegs(*g);
    ASSERT_EQ(inductions.size(), 1u);
    EXPECT_EQ(inductions[0].unified_reg, a0);
}

} // namespace
