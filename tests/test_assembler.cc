/**
 * @file
 * Assembler tests: label resolution (forward/backward), pseudo-ops,
 * program metadata, error handling, and a randomized encode/decode
 * round-trip fuzz over the whole instruction space.
 */

#include <gtest/gtest.h>

#include <random>

#include "riscv/assembler.hh"
#include "riscv/encoding.hh"
#include "util/logging.hh"

namespace
{

using namespace mesa;
using namespace mesa::riscv;
using namespace mesa::riscv::reg;

TEST(Assembler, BackwardAndForwardLabels)
{
    Assembler as(0x2000);
    as.label("top");          // 0x2000
    as.addi(a0, a0, 1);       // 0x2000
    as.beq(a0, a1, "skip");   // 0x2004 -> 0x200C (fwd +8)
    as.addi(a2, a2, 1);       // 0x2008
    as.label("skip");
    as.blt(a0, a3, "top");    // 0x200C -> 0x2000 (bwd -12)
    as.ecall();

    const Program prog = as.assemble();
    EXPECT_EQ(prog.labelPc("top"), 0x2000u);
    EXPECT_EQ(prog.labelPc("skip"), 0x200Cu);
    const auto insts = prog.decodeAll();
    EXPECT_EQ(insts[1].imm, 8);
    EXPECT_EQ(insts[3].imm, -12);
    EXPECT_TRUE(insts[3].isBackwardBranch());
    EXPECT_EQ(insts[3].targetPc(), 0x2000u);
}

TEST(Assembler, ErrorsOnBadLabels)
{
    Assembler as;
    as.beq(a0, a1, "nowhere");
    EXPECT_THROW(as.assemble(), FatalError);

    Assembler dup;
    dup.label("x");
    EXPECT_THROW(dup.label("x"), FatalError);

    Assembler ok;
    ok.ecall();
    EXPECT_THROW(ok.assemble().labelPc("missing"), FatalError);
}

TEST(Assembler, PseudoOps)
{
    Assembler as;
    as.nop();
    as.mv(a1, a0);
    as.j("end");
    as.li(a2, 100000);
    as.label("end");
    as.ecall();
    const auto insts = as.assemble().decodeAll();
    EXPECT_EQ(insts[0].op, Op::Addi); // nop = addi x0,x0,0
    EXPECT_EQ(insts[0].rd, 0);
    EXPECT_EQ(insts[1].op, Op::Addi); // mv = addi rd,rs,0
    EXPECT_EQ(insts[2].op, Op::Jal);
    EXPECT_EQ(insts[2].rd, 0);
    // li 100000 expands to lui+addi.
    EXPECT_EQ(insts[3].op, Op::Lui);
    EXPECT_EQ(insts[4].op, Op::Addi);
}

TEST(Assembler, HereTracksPc)
{
    Assembler as(0x400);
    EXPECT_EQ(as.here(), 0x400u);
    as.nop();
    as.nop();
    EXPECT_EQ(as.here(), 0x408u);
    EXPECT_EQ(as.size(), 2u);
}

TEST(Assembler, ProgramEndPc)
{
    Assembler as(0x1000);
    as.nop();
    as.ecall();
    const Program prog = as.assemble();
    EXPECT_EQ(prog.endPc(), 0x1008u);
    EXPECT_EQ(prog.words.size(), 2u);
}

/**
 * Fuzz: random register/immediate fields for every encodable op must
 * survive an encode -> decode round trip. This sweeps field packing
 * for all six RISC-V formats.
 */
TEST(EncodingFuzz, RandomRoundTrip)
{
    std::mt19937 rng(12345);
    auto reg_dist = std::uniform_int_distribution<int>(0, 31);
    auto imm12 = std::uniform_int_distribution<int>(-2048, 2047);
    auto imm13 = std::uniform_int_distribution<int>(-4096, 4094);
    auto imm21 =
        std::uniform_int_distribution<int>(-(1 << 20), (1 << 20) - 2);
    auto imm20 = std::uniform_int_distribution<int>(-(1 << 19),
                                                    (1 << 19) - 1);
    auto shamt = std::uniform_int_distribution<int>(0, 31);

    for (int op_i = 1; op_i < int(Op::NumOps); ++op_i) {
        const Op op = Op(op_i);
        for (int trial = 0; trial < 50; ++trial) {
            Instruction in;
            in.op = op;
            in.rd = uint8_t(reg_dist(rng));
            in.rs1 = uint8_t(reg_dist(rng));
            in.rs2 = uint8_t(reg_dist(rng));
            in.pc = 0x1000;
            switch (op) {
              case Op::Lui:
              case Op::Auipc:
                in.imm = imm20(rng) << 12;
                break;
              case Op::Jal:
                in.imm = imm21(rng) & ~1;
                break;
              case Op::Beq:
              case Op::Bne:
              case Op::Blt:
              case Op::Bge:
              case Op::Bltu:
              case Op::Bgeu:
                in.imm = imm13(rng) & ~1;
                break;
              case Op::Slli:
              case Op::Srli:
              case Op::Srai:
                in.imm = shamt(rng);
                break;
              case Op::Fence:
              case Op::Ecall:
              case Op::Ebreak:
                in.imm = op == Op::Ebreak ? 1 : 0;
                in.rd = in.rs1 = in.rs2 = 0;
                break;
              default:
                in.imm = imm12(rng);
                break;
            }
            const Instruction out = decode(encode(in), in.pc);
            ASSERT_EQ(out.op, in.op)
                << opName(op) << " trial " << trial;
            if (writesDest(op)) {
                ASSERT_EQ(out.rd, in.rd) << opName(op);
            }
            if (numSources(op) >= 1) {
                ASSERT_EQ(out.rs1, in.rs1) << opName(op);
            }
            // rs2 is an immediate field for shifts and unused by
            // loads/single-source FP ops.
            const bool rs2_real =
                numSources(op) >= 2 && opClass(op) != OpClass::Load &&
                op != Op::Slli && op != Op::Srli && op != Op::Srai;
            if (rs2_real) {
                ASSERT_EQ(out.rs2, in.rs2) << opName(op);
            }
            const bool has_imm =
                op != Op::Fence &&
                (opClass(op) == OpClass::Load ||
                 opClass(op) == OpClass::Store ||
                 opClass(op) == OpClass::Branch || op == Op::Jal ||
                 op == Op::Jalr || op == Op::Lui || op == Op::Auipc ||
                 op == Op::Addi || op == Op::Slti || op == Op::Sltiu ||
                 op == Op::Xori || op == Op::Ori || op == Op::Andi ||
                 op == Op::Slli || op == Op::Srli || op == Op::Srai);
            if (has_imm) {
                ASSERT_EQ(out.imm, in.imm) << opName(op);
            }
        }
    }
}

/** Disassembly smoke: every op prints its mnemonic. */
TEST(Disassembly, MentionsMnemonic)
{
    Assembler as;
    as.label("loop");
    as.lw(t0, 8, a0);
    as.fadd_s(ft1, ft2, ft3);
    as.sw(t0, -4, a1);
    as.blt(a0, a1, "loop");
    as.ecall();
    for (const auto &inst : as.assemble().decodeAll()) {
        const std::string text = inst.toString();
        EXPECT_NE(text.find(opName(inst.op)), std::string::npos)
            << text;
    }
}

} // namespace
