/**
 * @file
 * Shared test utilities: golden-model reference runs and manual
 * offload plumbing used by the accelerator and controller tests.
 */

#ifndef MESA_TESTS_HELPERS_HH
#define MESA_TESTS_HELPERS_HH

#include <unordered_map>
#include <vector>

#include "cpu/system.hh"
#include "mesa/controller.hh"
#include "riscv/emulator.hh"
#include "workloads/kernel.hh"

namespace mesa::test
{

/** Outcome of a full functional run. */
struct GoldenResult
{
    riscv::ArchState state;
    std::unordered_map<uint32_t, std::vector<uint8_t>> memory;
    uint64_t instructions = 0;
};

/** Run a kernel start-to-halt on the functional emulator. */
inline GoldenResult
runReference(const workloads::Kernel &kernel,
             uint64_t max_steps = 50'000'000)
{
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    emu.run(max_steps);

    GoldenResult res;
    res.state = emu.state();
    res.memory = memory.snapshot();
    res.instructions = emu.instret();
    return res;
}

/**
 * Step the emulator until it reaches the hot loop's entry point
 * (executes any pre-loop setup code, e.g. bfs's outer-level
 * preamble).
 */
inline void
advanceToLoop(riscv::Emulator &emu, const workloads::Kernel &kernel,
              uint64_t max_steps = 1'000'000)
{
    uint64_t steps = 0;
    while (!emu.halted() && emu.state().pc != kernel.loop_start &&
           steps < max_steps) {
        emu.step();
        ++steps;
    }
}

/**
 * Run a kernel with the loop offloaded through MesaController, then
 * resume the emulator to program completion.
 */
struct OffloadRun
{
    riscv::ArchState state;
    std::unordered_map<uint32_t, std::vector<uint8_t>> memory;
    std::optional<core::OffloadStats> stats;
};

inline OffloadRun
runWithOffload(const workloads::Kernel &kernel,
               const core::MesaParams &params,
               uint64_t max_steps = 50'000'000)
{
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    core::MesaController mesa(params, memory);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    advanceToLoop(emu, kernel);

    OffloadRun run;
    run.stats = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                                 kernel.parallel);
    // Resume the CPU from the state the accelerator wrote back.
    emu.run(max_steps);

    run.state = emu.state();
    run.memory = memory.snapshot();
    return run;
}

/** Compare two memory snapshots for exact equality. */
inline ::testing::AssertionResult
sameMemory(const std::unordered_map<uint32_t, std::vector<uint8_t>> &a,
           const std::unordered_map<uint32_t, std::vector<uint8_t>> &b)
{
    for (const auto &[page, data] : a) {
        auto it = b.find(page);
        if (it == b.end()) {
            // A page of all zeroes matches an absent page.
            bool all_zero = true;
            for (uint8_t byte : data)
                all_zero = all_zero && byte == 0;
            if (all_zero)
                continue;
            return ::testing::AssertionFailure()
                   << "page 0x" << std::hex << (page << 12)
                   << " present only on one side";
        }
        if (data != it->second) {
            size_t off = 0;
            while (off < data.size() && data[off] == it->second[off])
                ++off;
            return ::testing::AssertionFailure()
                   << "page 0x" << std::hex << (page << 12)
                   << " differs at offset 0x" << off;
        }
    }
    for (const auto &[page, data] : b) {
        if (a.count(page))
            continue;
        bool all_zero = true;
        for (uint8_t byte : data)
            all_zero = all_zero && byte == 0;
        if (!all_zero) {
            return ::testing::AssertionFailure()
                   << "page 0x" << std::hex << (page << 12)
                   << " present only on right side";
        }
    }
    return ::testing::AssertionSuccess();
}

} // namespace mesa::test

#endif // MESA_TESTS_HELPERS_HH
