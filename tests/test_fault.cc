/**
 * @file
 * Fault-tolerance tests: watchdog cycle budgets, checkpoint/rollback
 * byte-exactness, CRC config-integrity detection, region quarantine
 * backoff, faulty-PE mapping exclusion (including the folded
 * time-multiplex grid), end-to-end permanent-fault remap, scheduler
 * degraded-way steering, and campaign determinism / the zero-silent-
 * corruption guarantee of checked mode.
 */

#include <gtest/gtest.h>

#include "fault/campaign.hh"
#include "fault/checkpoint.hh"
#include "fault/injector.hh"
#include "fault/quarantine.hh"
#include "helpers.hh"
#include "sched/scheduler.hh"
#include "util/stats_registry.hh"

using namespace mesa;
using namespace mesa::test;
using workloads::Kernel;
using workloads::kernelByName;

namespace
{

/** An emulator parked at the kernel's loop entry, plus its memory. */
struct ParkedRun
{
    mem::MainMemory memory;
    std::unique_ptr<core::MesaController> mesa;
    std::unique_ptr<riscv::Emulator> emu;
};

ParkedRun
park(const Kernel &kernel, const core::MesaParams &params,
     StatsRegistry *stats = nullptr)
{
    ParkedRun run;
    kernel.init_data(run.memory);
    cpu::loadProgram(run.memory, kernel.program);
    run.mesa =
        std::make_unique<core::MesaController>(params, run.memory);
    if (stats)
        run.mesa->attachStats(stats);
    run.emu = std::make_unique<riscv::Emulator>(run.memory);
    run.emu->reset(kernel.program.base_pc);
    kernel.fullRange()(run.emu->state());
    advanceToLoop(*run.emu, kernel);
    return run;
}

} // namespace

// ---------------------------------------------------------------------
// Satellite 1: watchdog cycle budget, independent of fault mode.

TEST(Watchdog, DeviceBudgetCutsCleanRunWithExactPrefix)
{
    // No fault injected: a tiny device budget cuts a legitimate long
    // run. The partial progress is a prefix of sequential order, so
    // resuming the CPU from the written-back state finishes
    // bit-exactly.
    const Kernel kernel = kernelByName("nn", {2048});
    const auto golden = runReference(kernel);

    core::MesaParams params;
    params.fault.enabled = false; // the device cap is always armed
    params.accel.watchdog_cycles = 500;

    auto run = park(kernel, params);
    auto os = run.mesa->offloadLoop(kernel.loopBody(),
                                    run.emu->state(), kernel.parallel);
    ASSERT_TRUE(os.has_value());
    EXPECT_TRUE(os->accel.watchdog_tripped);
    EXPECT_EQ(os->fallback, core::FallbackReason::Watchdog);

    run.emu->run(50'000'000);
    EXPECT_EQ(run.emu->state(), golden.state);
    EXPECT_TRUE(sameMemory(run.memory.snapshot(), golden.memory));
}

TEST(Watchdog, DeviceBudgetTerminatesInducedHangWithoutFaultMode)
{
    // With an induced control-line hang and no recovery machinery the
    // device cap's job is liveness: the offload must terminate and be
    // reported, not wedge the simulation.
    const Kernel kernel = kernelByName("nn", {128});
    core::MesaParams params;
    params.fault.enabled = false;
    params.accel.watchdog_cycles = 20'000;

    auto run = park(kernel, params);
    accel::FaultPlane plane;
    plane.stuck_branches.push_back({0});
    run.mesa->accelerator().injectFaults(plane);

    auto os = run.mesa->offloadLoop(kernel.loopBody(),
                                    run.emu->state(), kernel.parallel);
    ASSERT_TRUE(os.has_value());
    EXPECT_TRUE(os->accel.watchdog_tripped);
    EXPECT_EQ(os->fallback, core::FallbackReason::Watchdog);
}

TEST(Watchdog, FaultModeRollsBackAndReexecutesOnCpu)
{
    const Kernel kernel = kernelByName("hotspot", {128});
    const auto golden = runReference(kernel);

    core::MesaParams params;
    params.fault.enabled = true;
    params.fault.checked_mode = false;
    params.fault.watchdog_cycles = 20'000;

    StatsRegistry stats;
    auto run = park(kernel, params, &stats);
    accel::FaultPlane plane;
    plane.stuck_branches.push_back({4});
    run.mesa->accelerator().injectFaults(plane);

    auto os = run.mesa->offloadLoop(kernel.loopBody(),
                                    run.emu->state(), kernel.parallel);
    ASSERT_TRUE(os.has_value());
    EXPECT_EQ(os->fallback, core::FallbackReason::Watchdog);
    EXPECT_GE(stats.value("mesa.fault.watchdog_trips"), 1.0);
    EXPECT_GE(stats.value("mesa.fault.rollbacks"), 1.0);
    EXPECT_GT(os->cpu_reexec_instructions, 0u);

    run.emu->run(50'000'000);
    EXPECT_EQ(run.emu->state(), golden.state);
    EXPECT_TRUE(sameMemory(run.memory.snapshot(), golden.memory));
}

// ---------------------------------------------------------------------
// Satellite 4: checkpoint capture / corrupt / restore byte-exactness.

TEST(Checkpoint, RestoreUndoesRegisterAndMemoryCorruption)
{
    const Kernel kernel = kernelByName("srad", {256});
    const auto golden = runReference(kernel);

    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);
    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    advanceToLoop(emu, kernel);

    const auto ckpt = fault::Checkpoint::capture(emu.state(), memory);

    // Corrupt mid-offload state: run part of the loop, then scribble
    // over registers and memory (touching a page the checkpoint never
    // saw, which restore must drop again).
    for (int i = 0; i < 500 && !emu.halted(); ++i)
        emu.step();
    emu.state().x[5] ^= 0xdeadbeef;
    emu.state().f[3] ^= 0x3f800000;
    emu.state().pc = 0x4;
    memory.write32(0x2000, 0x12345678);
    memory.write32(0x7f000000, 0xabcdef01);

    ckpt.restore(emu.state(), memory);
    EXPECT_EQ(emu.state(), ckpt.state);
    EXPECT_TRUE(fault::memorySnapshotsEqual(memory.snapshot(),
                                            ckpt.pages));

    // Re-executing from the restored checkpoint ends bit-exact with a
    // run that never checkpointed at all.
    emu.run(50'000'000);
    EXPECT_EQ(emu.state(), golden.state);
    EXPECT_TRUE(sameMemory(memory.snapshot(), golden.memory));
}

TEST(Checkpoint, SnapshotComparisonNormalizesZeroPages)
{
    fault::MemSnapshot a, b;
    a[4] = std::vector<uint8_t>(4096, 0); // zero page vs absent page
    b[9] = std::vector<uint8_t>(4096, 0);
    EXPECT_TRUE(fault::memorySnapshotsEqual(a, b));
    b[9][17] = 1;
    EXPECT_FALSE(fault::memorySnapshotsEqual(a, b));
}

// ---------------------------------------------------------------------
// CRC config-integrity gate.

TEST(Crc, DetectsEveryConfigCorruptionAcrossSeeds)
{
    const Kernel kernel = kernelByName("nn", {128});
    const auto golden = runReference(kernel);

    for (uint64_t seed = 1; seed <= 25; ++seed) {
        core::MesaParams params;
        params.fault.enabled = true;
        params.fault.checked_mode = false;

        StatsRegistry stats;
        auto run = park(kernel, params, &stats);
        SplitMix64 rng(seed);
        run.mesa->setConfigCorruptor(
            [&rng](accel::AcceleratorConfig &cfg) {
                fault::corruptConfig(cfg, rng);
            });

        auto os = run.mesa->offloadLoop(
            kernel.loopBody(), run.emu->state(), kernel.parallel);
        ASSERT_TRUE(os.has_value()) << "seed " << seed;
        EXPECT_GE(stats.value("mesa.fault.crc_failures"), 1.0)
            << "seed " << seed << ": corruption not caught by CRC";

        run.emu->run(50'000'000);
        EXPECT_EQ(run.emu->state(), golden.state) << "seed " << seed;
        EXPECT_TRUE(sameMemory(run.memory.snapshot(), golden.memory))
            << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Region quarantine: exponential backoff with success decay.

TEST(Quarantine, BackoffDoublesAndDecaysAfterSuccesses)
{
    fault::RegionQuarantine q;
    EXPECT_TRUE(q.shouldOffload(0x100));

    q.onFault(0x100); // strikes 1 -> skip 1
    EXPECT_EQ(q.strikes(0x100), 1);
    EXPECT_EQ(q.quarantinedCount(), 1u);
    EXPECT_FALSE(q.shouldOffload(0x100));
    EXPECT_TRUE(q.shouldOffload(0x100));

    q.onFault(0x100); // strikes 2 -> skip 2
    q.onFault(0x100); // strikes 3 -> skip 4
    EXPECT_EQ(q.strikes(0x100), 3);
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(q.shouldOffload(0x100)) << "credit " << i;
    EXPECT_TRUE(q.shouldOffload(0x100));

    // Two consecutive clean offloads shed one strike; a lone success
    // between faults does not.
    q.onSuccess(0x100);
    q.onSuccess(0x100);
    EXPECT_EQ(q.strikes(0x100), 2);
    q.onSuccess(0x100);
    EXPECT_EQ(q.strikes(0x100), 2);
    q.onSuccess(0x100);
    EXPECT_EQ(q.strikes(0x100), 1);
    q.onSuccess(0x100);
    q.onSuccess(0x100);
    EXPECT_EQ(q.strikes(0x100), 0); // fully rehabilitated

    // Other regions are independent; clear() drops an entry.
    q.onFault(0x200);
    EXPECT_TRUE(q.shouldOffload(0x300));
    q.clear(0x200);
    EXPECT_TRUE(q.shouldOffload(0x200));
}

TEST(Quarantine, KnobsBoundStrikesAndForgiveness)
{
    // max_strikes caps the backoff exponent; forgive_successes sets
    // how many consecutive clean offloads shed one strike.
    fault::QuarantineParams qp;
    qp.max_strikes = 2;
    qp.forgive_successes = 1;
    fault::RegionQuarantine q(qp);

    q.onFault(0x100);
    q.onFault(0x100);
    q.onFault(0x100); // capped: strikes stay at max_strikes
    EXPECT_EQ(q.strikes(0x100), 2);

    // Drain the pending skip sentence, then every single clean
    // offload forgives one strike (forgive_successes == 1).
    while (!q.shouldOffload(0x100)) {
    }
    q.onSuccess(0x100);
    EXPECT_EQ(q.strikes(0x100), 1);
    EXPECT_TRUE(q.onSuccess(0x100)); // fully rehabilitated
    EXPECT_EQ(q.strikes(0x100), 0);
}

TEST(Quarantine, ControllerExportsLiveFabricHealthGauges)
{
    const Kernel kernel = kernelByName("hotspot", {128});
    core::MesaParams params;
    params.fault.enabled = true;
    params.fault.checked_mode = false;
    params.fault.watchdog_cycles = 20'000;

    StatsRegistry stats;
    auto run = park(kernel, params, &stats);
    EXPECT_EQ(stats.value("mesa.fault.quarantined_regions"), 0.0);
    EXPECT_EQ(stats.value("mesa.fault.retired_pes"), 0.0);

    accel::FaultPlane plane;
    plane.stuck_branches.push_back({4});
    run.mesa->accelerator().injectFaults(plane);
    auto os = run.mesa->offloadLoop(kernel.loopBody(),
                                    run.emu->state(), kernel.parallel);
    ASSERT_TRUE(os.has_value());

    // The hang struck the region: the quarantine gauge went live.
    EXPECT_GE(stats.value("mesa.fault.quarantined_regions"), 1.0);
    EXPECT_EQ(double(run.mesa->quarantine().quarantinedCount()),
              stats.value("mesa.fault.quarantined_regions"));
}

TEST(Quarantine, FaultyPeMapDeduplicates)
{
    fault::FaultyPeMap map;
    EXPECT_TRUE(map.empty());
    EXPECT_TRUE(map.add({2, 3}));
    EXPECT_FALSE(map.add({2, 3}));
    EXPECT_TRUE(map.add({2, 4}));
    EXPECT_EQ(map.size(), 2u);
    EXPECT_TRUE(map.faulty({2, 3}));
    EXPECT_FALSE(map.faulty({3, 2}));
}

// ---------------------------------------------------------------------
// Mapper integration: blocked PEs never receive a node.

TEST(MapperBlocking, BlockedPesAreAvoided)
{
    const auto accel = accel::AccelParams::m128();
    ic::AccelNocInterconnect ic(accel.rows, accel.cols, 4);
    core::InstructionMapper mapper(accel, ic);

    const Kernel kernel = kernelByName("nn", {128});
    auto g = dfg::Ldfg::build(kernel.loopBody(), {}, 0, nullptr);
    ASSERT_TRUE(g.has_value());

    const auto before = mapper.map(*g);
    ASSERT_TRUE(before.fullyMapped());
    const ic::Coord victim = before.sdfg.coordOf(dfg::NodeId(0));
    ASSERT_TRUE(victim.valid());

    mapper.setBlockedPes({victim});
    const auto after = mapper.map(*g);
    EXPECT_TRUE(after.fullyMapped());
    for (size_t i = 0; i < g->size(); ++i)
        EXPECT_FALSE(after.sdfg.coordOf(dfg::NodeId(i)) == victim)
            << "node " << i << " placed on the blocked PE";
}

TEST(MapperBlocking, FoldedVirtualRowsBlockEveryAlias)
{
    // On a time-multiplexed virtual grid (2x the physical rows), a
    // blocked physical PE must exclude every virtual row that folds
    // onto it.
    auto accel = accel::AccelParams::m128();
    const int phys_rows = accel.rows;
    accel.rows *= 2; // virtual grid
    ic::AccelNocInterconnect ic(accel.rows, accel.cols, 4);
    core::InstructionMapper mapper(accel, ic);

    const Kernel kernel = kernelByName("hotspot", {128});
    auto g = dfg::Ldfg::build(kernel.loopBody(), {}, 0, nullptr);
    ASSERT_TRUE(g.has_value());

    const auto before = mapper.map(*g);
    ASSERT_TRUE(before.fullyMapped());
    const ic::Coord v = before.sdfg.coordOf(dfg::NodeId(0));
    const ic::Coord phys{v.r % phys_rows, v.c};

    mapper.setBlockedPes({phys}, phys_rows);
    const auto after = mapper.map(*g);
    EXPECT_TRUE(after.fullyMapped());
    for (size_t i = 0; i < g->size(); ++i) {
        const ic::Coord pos = after.sdfg.coordOf(dfg::NodeId(i));
        if (!pos.valid())
            continue;
        EXPECT_FALSE(pos.r % phys_rows == phys.r && pos.c == phys.c)
            << "node " << i << " aliases the blocked physical PE";
    }
}

// ---------------------------------------------------------------------
// End to end: a permanent fault is detected, the PE is quarantined by
// the self test, and the next offload maps around it.

TEST(PermanentFault, SelfTestQuarantinesAndRemapsAwayFromStuckPe)
{
    const Kernel kernel = kernelByName("hotspot", {128});
    const auto golden = runReference(kernel);

    // Learn a live placement from a clean run: the PE writing the
    // first live-out is guaranteed to matter.
    core::MesaParams clean_params;
    clean_params.enable_tiling = false;
    auto probe = park(kernel, clean_params);
    auto probe_os = probe.mesa->offloadLoop(
        kernel.loopBody(), probe.emu->state(), kernel.parallel);
    ASSERT_TRUE(probe_os.has_value());
    const auto &probe_cfg = probe.mesa->accelerator().config();
    ASSERT_FALSE(probe_cfg.live_outs.empty());
    const auto writer = probe_cfg.live_outs.begin()->second;
    const ic::Coord victim = probe_cfg.slots[size_t(writer)].pos;
    ASSERT_TRUE(victim.valid());

    core::MesaParams params;
    params.enable_tiling = false;
    params.fault.enabled = true;
    params.fault.checked_mode = true;
    params.fault.watchdog_cycles = 100'000;

    StatsRegistry stats;
    auto run = park(kernel, params, &stats);
    accel::FaultPlane plane;
    plane.stuck_pes.push_back({victim, 0x1});
    run.mesa->accelerator().injectFaults(plane);

    auto os = run.mesa->offloadLoop(kernel.loopBody(),
                                    run.emu->state(), kernel.parallel);
    ASSERT_TRUE(os.has_value());
    const double detections =
        stats.value("mesa.fault.mismatches") +
        stats.value("mesa.fault.watchdog_trips") +
        stats.value("mesa.fault.crc_failures");
    EXPECT_GE(detections, 1.0);

    // The recovery path leaves the architectural state golden.
    run.emu->run(50'000'000);
    EXPECT_EQ(run.emu->state(), golden.state);
    EXPECT_TRUE(sameMemory(run.memory.snapshot(), golden.memory));

    // The self test identified the defective PE...
    ASSERT_FALSE(run.mesa->faultyPes().empty());
    EXPECT_TRUE(run.mesa->faultyPes().faulty(victim));
    EXPECT_GE(stats.value("mesa.fault.quarantined_pes"), 1.0);

    // ...and a fresh encounter of the region maps around it and runs
    // cleanly on the degraded array.
    kernel.init_data(run.memory);
    cpu::loadProgram(run.memory, kernel.program);
    riscv::Emulator emu2(run.memory);
    emu2.reset(kernel.program.base_pc);
    kernel.fullRange()(emu2.state());
    advanceToLoop(emu2, kernel);
    auto os2 = run.mesa->offloadLoop(kernel.loopBody(), emu2.state(),
                                     kernel.parallel);
    ASSERT_TRUE(os2.has_value());
    EXPECT_GT(os2->accel_iterations, 0u);
    EXPECT_EQ(os2->fallback, core::FallbackReason::None);
    for (const auto &slot : run.mesa->accelerator().config().slots)
        EXPECT_FALSE(slot.pos == victim)
            << "remap placed a node on the quarantined PE";

    emu2.run(50'000'000);
    EXPECT_EQ(emu2.state(), golden.state);
    EXPECT_TRUE(sameMemory(run.memory.snapshot(), golden.memory));
}

// ---------------------------------------------------------------------
// Scheduler: degraded ways take no slices; tenants steer around them.

TEST(SchedulerFault, QuarantinedPartitionTakesNoSlices)
{
    const Kernel kernel = kernelByName("nn", {512});
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    sched::SchedParams sp;
    sp.accel = accel::AccelParams::m128();
    sp.spatial_ways = 2;
    sp.enable_tiling = false;
    sched::MultiTenantScheduler sched(sp, memory);
    ASSERT_EQ(sched.ways(), 2);

    const int bad_row = sched.partitions()[0].origin_row;
    sched.quarantinePes({{bad_row, 0}});
    EXPECT_EQ(sched.healthyWays(), 1);

    std::vector<std::unique_ptr<riscv::Emulator>> emus;
    for (const auto &chunk : kernel.chunks(2)) {
        auto emu = std::make_unique<riscv::Emulator>(memory);
        emu->reset(kernel.program.base_pc);
        chunk(emu->state());
        advanceToLoop(*emu, kernel);
        ASSERT_GE(sched.submit(kernel.loopBody(), emu->state(),
                               kernel.parallel),
                  0);
        emus.push_back(std::move(emu));
    }

    const auto result = sched.runAll();
    EXPECT_EQ(result.degraded_ways, 1u);
    for (const auto &slice : result.timeline)
        EXPECT_NE(slice.partition, 0)
            << "slice scheduled on the degraded way";
    for (const auto &t : result.tenants)
        EXPECT_TRUE(t.completed) << "tenant " << t.tenant;
}

TEST(SchedulerFault, AllWaysDegradedRefusesSubmission)
{
    const Kernel kernel = kernelByName("nn", {128});
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    sched::SchedParams sp;
    sp.accel = accel::AccelParams::m128();
    sp.spatial_ways = 2;
    sched::MultiTenantScheduler sched(sp, memory);

    std::vector<ic::Coord> everywhere;
    for (const auto &part : sched.partitions())
        everywhere.push_back({part.origin_row, 0});
    sched.quarantinePes(everywhere);
    EXPECT_EQ(sched.healthyWays(), 0);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    advanceToLoop(emu, kernel);
    EXPECT_EQ(sched.submit(kernel.loopBody(), emu.state(),
                           kernel.parallel),
              -1);
}

// ---------------------------------------------------------------------
// Satellite 3: campaigns are a pure function of the seed.

TEST(Campaign, SameSeedProducesIdenticalStatsSnapshots)
{
    fault::CampaignParams params;
    params.seed = 42;
    params.injections_per_kernel = 10;
    params.kernels = {"nn", "hotspot"};

    const auto a = fault::runCampaign(params);
    const auto b = fault::runCampaign(params);
    EXPECT_GT(a.totalInjections(), 0);
    EXPECT_EQ(a.statsSnapshot(), b.statsSnapshot());
}

// The headline guarantee: checked mode has zero silent corruptions.
TEST(Campaign, CheckedModeHasNoSilentCorruption)
{
    fault::CampaignParams params;
    params.seed = 7;
    params.injections_per_kernel = 15;
    params.kernels = {"nn", "srad", "hotspot"};

    const auto result = fault::runCampaign(params);
    EXPECT_EQ(result.totalInjections(), 45);
    EXPECT_GT(result.totalDetected(), 0);
    EXPECT_EQ(result.totalSilent(), 0);
    EXPECT_EQ(result.totalCorrupted(), 0);
    EXPECT_EQ(result.totalRemapChecks(), result.totalRemapClean());
    EXPECT_TRUE(result.clean());
}
