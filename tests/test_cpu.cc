/**
 * @file
 * CPU-side tests: OoO core timing model sanity, branch predictor,
 * loop-stream detector (C1), trace cache, and the C1-C3 region
 * monitor including the branch-condition trip estimator.
 */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"
#include "cpu/lsd.hh"
#include "cpu/monitor.hh"
#include "cpu/system.hh"
#include "cpu/trace_cache.hh"
#include "riscv/assembler.hh"
#include "util/logging.hh"
#include "workloads/kernel.hh"

namespace
{

using namespace mesa;
using namespace mesa::cpu;
using namespace mesa::riscv;
using namespace mesa::riscv::reg;

// ---------------------------------------------------------------------
// OoO core timing model.
// ---------------------------------------------------------------------

TEST(OooCore, IpcWithinPhysicalBounds)
{
    // An independent-op stream should reach near issue-width IPC; a
    // serial dependency chain should be near 1/latency.
    Assembler par;
    par.li(a0, 0);
    par.li(t0, 1000);
    par.label("loop");
    par.addi(a1, zero, 1);
    par.addi(a2, zero, 2);
    par.addi(a3, zero, 3);
    par.addi(a4, zero, 4);
    par.addi(a5, zero, 5);
    par.addi(a6, zero, 6);
    par.addi(a0, a0, 1);
    par.blt(a0, t0, "loop");
    par.ecall();

    mem::MainMemory m1;
    const Program p1 = par.assemble();
    loadProgram(m1, p1);
    const RunResult r1 =
        runSingleCore(defaultCore(), {}, m1, p1, nullptr);
    EXPECT_GT(r1.ipc(), 2.0);
    EXPECT_LE(r1.ipc(), 4.0 + 1e-9);

    Assembler ser;
    ser.li(a0, 0);
    ser.li(t0, 1000);
    ser.label("loop");
    ser.mul(a1, a1, a1); // serial 3-cycle chain
    ser.mul(a1, a1, a1);
    ser.mul(a1, a1, a1);
    ser.mul(a1, a1, a1);
    ser.addi(a0, a0, 1);
    ser.blt(a0, t0, "loop");
    ser.ecall();

    mem::MainMemory m2;
    const Program p2 = ser.assemble();
    loadProgram(m2, p2);
    const RunResult r2 =
        runSingleCore(defaultCore(), {}, m2, p2, nullptr);
    EXPECT_LT(r2.ipc(), r1.ipc());
    // 6 instructions per iteration, ~12 cycles of mul chain.
    EXPECT_LT(r2.ipc(), 1.0);
}

TEST(OooCore, MispredictsSlowExecution)
{
    // Data-dependent unpredictable branches vs a fixed pattern.
    Assembler as;
    as.li(a0, 0);
    as.li(t0, 2000);
    as.li(t2, 0x1234567);
    as.label("loop");
    // Pseudo-random bit: t2 = t2 * 1103515245 + 12345 (low bit used)
    as.li(t3, 1103515);
    as.mul(t2, t2, t3);
    as.addi(t2, t2, 12345);
    as.andi(t4, t2, 1);
    as.beq(t4, zero, "skip");
    as.addi(a1, a1, 1);
    as.label("skip");
    as.addi(a0, a0, 1);
    as.blt(a0, t0, "loop");
    as.ecall();

    mem::MainMemory m;
    const Program p = as.assemble();
    loadProgram(m, p);
    const RunResult r = runSingleCore(defaultCore(), {}, m, p, nullptr);
    EXPECT_GT(r.mispredicts, 400u) << "random branch should mispredict";
}

TEST(OooCore, MemoryLatencyVisible)
{
    // Pointer-chase (serial loads) vs streaming loads.
    Assembler chase;
    chase.li(a0, 0x100000);
    chase.li(t0, 500);
    chase.li(t1, 0);
    chase.label("loop");
    chase.lw(a0, 0, a0); // serial dependent loads
    chase.addi(t1, t1, 1);
    chase.blt(t1, t0, "loop");
    chase.ecall();

    mem::MainMemory m;
    // Build a pointer chain striding 4KB (forces misses).
    for (uint32_t i = 0; i < 600; ++i)
        m.write32(0x100000 + i * 4096, 0x100000 + (i + 1) * 4096);
    const Program p = chase.assemble();
    loadProgram(m, p);
    const RunResult r = runSingleCore(defaultCore(), {}, m, p, nullptr);
    // Each iteration pays at least an L2 access.
    EXPECT_GT(double(r.cycles) / 500.0, 10.0);
}

TEST(BranchPredictor, GshareLearnsPatternsBimodalCannot)
{
    // A strict alternating pattern defeats a bimodal counter but is
    // trivially captured by one bit of history.
    BranchPredictor bimodal(256);
    GsharePredictor gshare(256, 8);
    int bimodal_miss = 0, gshare_miss = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool taken = (i % 2) == 0;
        bimodal_miss += bimodal.update(0x4000, taken) ? 1 : 0;
        gshare_miss += gshare.update(0x4000, taken) ? 1 : 0;
    }
    EXPECT_GT(bimodal_miss, 600) << "bimodal should thrash";
    EXPECT_LT(gshare_miss, 100) << "gshare should lock on";
}

TEST(BranchPredictor, GshareSpeedsPatternedLoops)
{
    // A loop with a perfectly alternating data-dependent branch.
    Assembler as;
    as.li(a0, 0);
    as.li(t0, 4000);
    as.label("loop");
    as.andi(t1, a0, 1);
    as.beq(t1, zero, "skip");
    as.addi(a1, a1, 1);
    as.label("skip");
    as.addi(a0, a0, 1);
    as.blt(a0, t0, "loop");
    as.ecall();

    const Program p = as.assemble();
    mem::MainMemory m1, m2;
    loadProgram(m1, p);
    loadProgram(m2, p);
    CoreParams bimodal = defaultCore();
    CoreParams gshare = defaultCore();
    gshare.use_gshare = true;
    const RunResult rb = runSingleCore(bimodal, {}, m1, p, nullptr);
    const RunResult rg = runSingleCore(gshare, {}, m2, p, nullptr);
    EXPECT_LT(rg.mispredicts, rb.mispredicts / 4);
    EXPECT_LT(rg.cycles, rb.cycles);
}

TEST(BranchPredictor, LearnsBias)
{
    BranchPredictor bp(64);
    int mispredicts = 0;
    for (int i = 0; i < 100; ++i)
        mispredicts += bp.update(0x1000, true) ? 1 : 0;
    EXPECT_LE(mispredicts, 2);
    EXPECT_TRUE(bp.predict(0x1000));
    EXPECT_GT(bp.lookups(), 0u);
}

TEST(Multicore, ParallelSpeedup)
{
    const auto kernel = workloads::makeNn(4096);
    mem::MainMemory m;
    kernel.init_data(m);
    loadProgram(m, kernel.program);

    const RunResult single = runSingleCore(defaultCore(), {}, m,
                                           kernel.program,
                                           kernel.fullRange());

    MulticoreParams mp;
    mem::MainMemory m2;
    kernel.init_data(m2);
    loadProgram(m2, kernel.program);
    const RunResult multi = runMulticore(mp, m2, kernel.program,
                                         kernel.chunks(16));

    EXPECT_LT(multi.cycles, single.cycles);
    EXPECT_GT(double(single.cycles) / double(multi.cycles), 3.0)
        << "16 cores should speed up a parallel kernel considerably";
    EXPECT_EQ(multi.threads, 16);
}

// ---------------------------------------------------------------------
// Loop-stream detector.
// ---------------------------------------------------------------------

TEST(Lsd, DetectsAndConfirmsLoop)
{
    const auto kernel = workloads::makeGaussian(64);
    mem::MainMemory m;
    kernel.init_data(m);
    loadProgram(m, kernel.program);

    Emulator emu(m);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());

    LoopStreamDetector lsd(512);
    emu.setObserver([&](const TraceEntry &te) { lsd.observe(te); });
    emu.run(1'000'000);

    EXPECT_TRUE(lsd.confirmed());
    EXPECT_EQ(lsd.candidate().start, kernel.loop_start);
    EXPECT_EQ(lsd.candidate().end, kernel.loop_end);
    EXPECT_EQ(lsd.candidate().body_instructions,
              size_t(kernel.loop_end - kernel.loop_start) / 4);
}

TEST(Lsd, RejectsOversizedLoop)
{
    const auto kernel = workloads::makeSrad(256); // ~78-instr body
    mem::MainMemory m;
    kernel.init_data(m);
    loadProgram(m, kernel.program);

    Emulator emu(m);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());

    LoopStreamDetector lsd(64); // M-64-sized capacity
    emu.setObserver([&](const TraceEntry &te) { lsd.observe(te); });
    emu.run(1'000'000);
    EXPECT_FALSE(lsd.confirmed());
}

// ---------------------------------------------------------------------
// Trace cache.
// ---------------------------------------------------------------------

TEST(TraceCache, FillAndBackfill)
{
    TraceCache tc(16);
    tc.setRegion(0x1000, 0x1020); // 8 instructions
    EXPECT_FALSE(tc.complete());
    tc.fill(0x1000, 111);
    tc.fill(0x1004, 222);
    tc.fill(0x1000, 999); // duplicate fill ignored
    EXPECT_DOUBLE_EQ(tc.fillRatio(), 2.0 / 8.0);
    tc.fill(0x2000, 5); // outside region: ignored

    mem::MainMemory m;
    for (int i = 0; i < 8; ++i)
        m.write32(0x1000 + 4 * i, mesa::riscv::encode([&] {
                      Instruction in;
                      in.op = Op::Addi;
                      in.rd = 5;
                      in.rs1 = 5;
                      in.imm = i;
                      return in;
                  }()));
    const size_t fetched = tc.backfill(m);
    EXPECT_EQ(fetched, 6u);
    EXPECT_TRUE(tc.complete());

    const auto body = tc.body();
    ASSERT_EQ(body.size(), 8u);
    EXPECT_EQ(body[2].op, Op::Addi);
    EXPECT_EQ(body[2].imm, 2);
    EXPECT_EQ(body[2].pc, 0x1008u);
}

TEST(TraceCache, RejectsOversizedRegion)
{
    TraceCache tc(4);
    EXPECT_THROW(tc.setRegion(0x1000, 0x1000 + 4 * 8),
                 mesa::FatalError);
}

// ---------------------------------------------------------------------
// Region monitor (C1-C3).
// ---------------------------------------------------------------------

MonitorParams
lenientParams()
{
    MonitorParams p;
    p.max_instructions = 128;
    p.min_expected_iterations = 50;
    return p;
}

std::optional<MonitorDecision>
monitorKernel(const workloads::Kernel &kernel, const MonitorParams &mp,
              uint64_t max_steps = 2'000'000)
{
    mem::MainMemory m;
    kernel.init_data(m);
    loadProgram(m, kernel.program);

    Emulator emu(m);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());

    RegionMonitor monitor(mp);
    std::optional<MonitorDecision> decision;
    emu.setObserver([&](const TraceEntry &te) {
        monitor.observe(te);
        if (!decision && monitor.decision())
            decision = monitor.decision();
    });
    uint64_t steps = 0;
    while (!emu.halted() && steps < max_steps && !decision) {
        emu.step();
        ++steps;
    }
    return decision;
}

TEST(Monitor, QualifiesComputeLoop)
{
    const auto kernel = workloads::makeNn(2048);
    const auto decision = monitorKernel(kernel, lenientParams());
    ASSERT_TRUE(decision.has_value());
    EXPECT_TRUE(decision->qualified)
        << rejectReasonName(decision->reason);
    EXPECT_EQ(decision->loop.start, kernel.loop_start);
    // ~2045 iterations remain at qualification time; the estimate
    // must be in the right ballpark.
    EXPECT_GT(decision->est_remaining_iterations, 1000u);
    EXPECT_LT(decision->est_remaining_iterations, 2049u);
    EXPECT_GT(decision->compute_frac, 0.3);
}

TEST(Monitor, RejectsShortTripLoop)
{
    const auto kernel = workloads::makeNn(20); // only 20 iterations
    const auto decision = monitorKernel(kernel, lenientParams());
    ASSERT_TRUE(decision.has_value());
    EXPECT_FALSE(decision->qualified);
    EXPECT_EQ(decision->reason, RejectReason::FewIterations);
}

TEST(Monitor, RejectsInnerLoopKernel)
{
    const auto kernel = workloads::makeBtree(512);
    const auto decision = monitorKernel(kernel, lenientParams());
    ASSERT_TRUE(decision.has_value());
    EXPECT_FALSE(decision->qualified);
    // The inner scan loop either escapes mid-check or carries an
    // exit branch: both are C2-class rejections.
    EXPECT_TRUE(decision->reason == RejectReason::EarlyExit ||
                decision->reason == RejectReason::UnsupportedInstr)
        << rejectReasonName(decision->reason);
}

TEST(Monitor, RejectsOversizedLoopC1)
{
    const auto kernel = workloads::makeSrad(1024);
    MonitorParams mp = lenientParams();
    mp.max_instructions = 64; // M-64 capacity
    const auto decision = monitorKernel(kernel, mp);
    ASSERT_TRUE(decision.has_value());
    EXPECT_FALSE(decision->qualified);
    EXPECT_EQ(decision->reason, RejectReason::TooLarge);
}

TEST(Monitor, CapturesBodyIntoTraceCache)
{
    const auto kernel = workloads::makeHotspot(1024);
    mem::MainMemory m;
    kernel.init_data(m);
    loadProgram(m, kernel.program);

    Emulator emu(m);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());

    RegionMonitor monitor(lenientParams());
    emu.setObserver(
        [&](const TraceEntry &te) { monitor.observe(te); });
    uint64_t steps = 0;
    while (!emu.halted() && steps < 1'000'000) {
        emu.step();
        ++steps;
        if (monitor.decision() && monitor.decision()->qualified)
            break;
    }
    ASSERT_TRUE(monitor.decision() && monitor.decision()->qualified);
    EXPECT_TRUE(monitor.traceCache().complete());
    const auto body = monitor.traceCache().body();
    EXPECT_EQ(body.size(),
              size_t(kernel.loop_end - kernel.loop_start) / 4);
    EXPECT_EQ(body.front().pc, kernel.loop_start);
}

TEST(Monitor, BlacklistSkipsRegion)
{
    const auto kernel = workloads::makeNn(2048);
    mem::MainMemory m;
    kernel.init_data(m);
    loadProgram(m, kernel.program);

    Emulator emu(m);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());

    RegionMonitor monitor(lenientParams());
    monitor.blacklist(kernel.loop_start);
    emu.setObserver(
        [&](const TraceEntry &te) { monitor.observe(te); });
    uint64_t steps = 0;
    while (!emu.halted() && steps < 500'000) {
        emu.step();
        ++steps;
    }
    EXPECT_FALSE(monitor.decision().has_value());
}

} // namespace
