/**
 * @file
 * Abstract-interpretation certifier tests: exhaustive cross-checks of
 * the interval/stride transfer functions against concrete RV32
 * semantics, widening termination on adversarial induction chains,
 * closed-form trip counts, and footprint soundness over the full
 * kernel suite (every concretely traced address must fall inside the
 * proven bounds).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "absint/certificate.hh"
#include "absint/domain.hh"
#include "cpu/system.hh"
#include "dfg/ldfg.hh"
#include "riscv/alu.hh"
#include "riscv/assembler.hh"
#include "riscv/emulator.hh"
#include "util/json.hh"
#include "workloads/suite.hh"

#include "helpers.hh"

namespace mesa
{
namespace
{

using absint::AbsVal;
using absint::BodyCertificate;
using absint::Interval;
using absint::RegionClass;
using absint::Stride;
using riscv::Op;
namespace reg = riscv::reg;

// --------------------------------------------------------------------
// Interval / stride domain units.
// --------------------------------------------------------------------

TEST(AbsintDomain, IntervalBasics)
{
    const Interval a = Interval::range(2, 10);
    const Interval b = Interval::range(-3, 4);
    EXPECT_EQ(a.add(b), Interval::range(-1, 14));
    EXPECT_EQ(a.sub(b), Interval::range(-2, 13));
    EXPECT_EQ(a.join(b), Interval::range(-3, 10));
    EXPECT_EQ(a.mul(Interval::constant(-2)), Interval::range(-20, -4));
    EXPECT_EQ(Interval::range(4, 12).shiftRightU(2), Interval::range(1, 3));
    EXPECT_TRUE(Interval::top().add(a).isTop());

    // Widening escapes only the moved bound.
    EXPECT_EQ(a.widen(Interval::range(2, 12)),
              Interval::range(2, Interval::PosInf));
    EXPECT_EQ(a.widen(Interval::range(0, 10)),
              Interval::range(Interval::NegInf, 10));
    EXPECT_EQ(a.widen(a), a);
}

TEST(AbsintDomain, IntervalSaturates)
{
    const Interval big = Interval::range(INT64_MAX - 4, INT64_MAX - 1);
    EXPECT_EQ(big.add(Interval::constant(100)).hi, Interval::PosInf);
    const Interval ray = Interval::range(0, Interval::PosInf);
    EXPECT_EQ(ray.add(Interval::constant(4)).lo, 4);
    EXPECT_EQ(ray.add(Interval::constant(4)).hi, Interval::PosInf);
}

TEST(AbsintDomain, StrideBasics)
{
    const Stride s4 = absint::normalizeStride(4, 0);
    EXPECT_TRUE(s4.contains(8));
    EXPECT_FALSE(s4.contains(6));
    EXPECT_EQ(s4.add(Stride::constant(2)), absint::normalizeStride(4, 2));
    EXPECT_EQ(s4.mulConst(3), absint::normalizeStride(12, 0));
    // join(8Z, 8Z+4) = 4Z.
    const Stride j = absint::normalizeStride(8, 0).join(
        absint::normalizeStride(8, 4));
    EXPECT_EQ(j, absint::normalizeStride(4, 0));
    // join of two constants captures their distance.
    EXPECT_EQ(Stride::constant(3).join(Stride::constant(15)),
              absint::normalizeStride(12, 3));
    EXPECT_TRUE(Stride::top().contains(-7));
}

// --------------------------------------------------------------------
// Exhaustive transfer-function cross-check against aluEval.
// --------------------------------------------------------------------

/** Sample machine words: small magnitudes only, so signed folds in
 *  aluEval (e.g. mul) cannot overflow. */
const std::vector<uint32_t> &
sampleWords()
{
    static const std::vector<uint32_t> words = {
        0,          1,          2,          3,          5,
        8,          127,        4096,       0xFFFFFFFEu, // -2
        0xFFFFFFFFu,                                     // -1
    };
    return words;
}

AbsVal
absRange(uint32_t lo, uint32_t hi)
{
    AbsVal v;
    v.is_top = false;
    v.base = -1;
    v.off = Interval::range(int64_t(lo), int64_t(hi));
    v.stride = lo == hi ? Stride::constant(int64_t(lo)) : Stride::top();
    return v;
}

/** Every op the transfer function models beyond blanket Top. */
struct OpCase
{
    Op op;
    int32_t imm;
    bool uses_b;
};

const std::vector<OpCase> &
transferCases()
{
    static const std::vector<OpCase> cases = {
        {Op::Addi, 0, false},   {Op::Addi, 4, false},
        {Op::Addi, -8, false},  {Op::Addi, 2047, false},
        {Op::Addi, -2048, false},
        {Op::Slli, 0, false},   {Op::Slli, 2, false},
        {Op::Slli, 31, false},  {Op::Srli, 1, false},
        {Op::Srli, 31, false},  {Op::Srai, 2, false},
        {Op::Andi, 0xFF, false}, {Op::Ori, 0x10, false},
        {Op::Xori, -1, false},  {Op::Slti, 3, false},
        {Op::Sltiu, 3, false},
        {Op::Add, 0, true},     {Op::Sub, 0, true},
        {Op::Mul, 0, true},     {Op::And, 0, true},
        {Op::Or, 0, true},      {Op::Xor, 0, true},
        {Op::Sll, 0, true},     {Op::Srl, 0, true},
        {Op::Sra, 0, true},     {Op::Slt, 0, true},
        {Op::Sltu, 0, true},    {Op::Div, 0, true},
        {Op::Divu, 0, true},    {Op::Rem, 0, true},
        {Op::Remu, 0, true},    {Op::Mulh, 0, true},
    };
    return cases;
}

void
checkSound(const OpCase &c, const AbsVal &av, const AbsVal &bv, uint32_t a,
            uint32_t b)
{
    const AbsVal r = absint::transfer(c.op, c.imm, 0x1000, av, bv);
    if (r.is_top)
        return; // Top is trivially sound
    const uint32_t machine = riscv::aluEval(c.op, a, b, c.imm, 0x1000);
    ASSERT_EQ(r.base, -1) << riscv::opName(c.op);
    EXPECT_TRUE(r.off.contains(int64_t(machine)))
        << riscv::opName(c.op) << " imm=" << c.imm << " a=" << a
        << " b=" << b << " machine=" << machine << " abs=" << r.toString();
    EXPECT_TRUE(r.stride.contains(int64_t(machine)))
        << riscv::opName(c.op) << " a=" << a << " b=" << b
        << " machine=" << machine << " abs=" << r.toString();
}

TEST(AbsintDomain, TransferSoundOnConstants)
{
    for (const OpCase &c : transferCases())
        for (uint32_t a : sampleWords())
            for (uint32_t b : sampleWords())
                checkSound(c, absRange(a, a), absRange(b, b), a, b);
}

TEST(AbsintDomain, TransferSoundOnRanges)
{
    // Enumerate small contiguous ranges and every concrete point in
    // them: the abstract result must contain each machine result.
    const std::vector<std::pair<uint32_t, uint32_t>> ranges = {
        {0, 6}, {3, 9}, {100, 110}, {0xFFFFFFF8u, 0xFFFFFFFFu}};
    for (const OpCase &c : transferCases())
        for (const auto &[alo, ahi] : ranges)
            for (const auto &[blo, bhi] : ranges)
                for (uint32_t a = alo; a != ahi + 1; ++a)
                    for (uint32_t b = blo; b != bhi + 1; ++b)
                        checkSound(c, absRange(alo, ahi),
                                   absRange(blo, bhi), a, b);
}

TEST(AbsintDomain, SymbolicAffineComposition)
{
    // (R[a0] + 8) - (R[a0] + 8) folds to the constant 0; adding a
    // constant keeps the base; two symbolic bases do not compose.
    const AbsVal p = absint::transfer(Op::Addi, 8, 0, AbsVal::entryReg(10),
                                      AbsVal::top());
    ASSERT_FALSE(p.is_top);
    EXPECT_EQ(p.base, 10);
    EXPECT_EQ(p.off, Interval::constant(8));

    const AbsVal z = absint::transfer(Op::Sub, 0, 0, p, p);
    ASSERT_FALSE(z.is_top);
    EXPECT_EQ(z.base, -1);
    EXPECT_EQ(z.off, Interval::constant(0));

    EXPECT_TRUE(absint::transfer(Op::Add, 0, 0, AbsVal::entryReg(10),
                                 AbsVal::entryReg(11))
                    .is_top);

    // Symbolic + absolute range: offsets accumulate.
    const AbsVal q = absint::transfer(Op::Add, 0, 0, p, absRange(4, 12));
    ASSERT_FALSE(q.is_top);
    EXPECT_EQ(q.base, 10);
    EXPECT_EQ(q.off, Interval::range(12, 20));
}

// --------------------------------------------------------------------
// Whole-body analysis helpers.
// --------------------------------------------------------------------

std::vector<riscv::Instruction>
bodyOf(const riscv::Program &program, const std::string &from,
       const std::string &to)
{
    std::vector<riscv::Instruction> body;
    const uint32_t start = program.labelPc(from);
    const uint32_t end = program.labelPc(to);
    for (const auto &inst : program.decodeAll())
        if (inst.pc >= start && inst.pc < end)
            body.push_back(inst);
    return body;
}

// --------------------------------------------------------------------
// Widening fixpoint termination.
// --------------------------------------------------------------------

TEST(AbsintFixpoint, AdversarialInductionChainsConverge)
{
    // A dozen interacting inductions: positive/negative steps, chained
    // symbolic sums (which degrade to Top), a scaled induction, and
    // two opposing guarded updates of the same register, which force
    // the widening to open both interval ends.
    riscv::Assembler as;
    as.label("loop");
    as.addi(reg::a0, reg::a0, 4);
    as.addi(reg::a1, reg::a1, -8);
    as.addi(reg::t0, reg::t0, 1);
    as.add(reg::t1, reg::t0, reg::a0); // symbolic + symbolic -> Top
    as.addi(reg::t2, reg::t2, 12);
    as.slli(reg::t3, reg::t0, 2);      // scaled symbolic -> Top
    as.add(reg::t4, reg::t3, reg::t2); // Top + symbolic -> Top
    as.bne(reg::t0, reg::zero, "skip1");
    as.addi(reg::s0, reg::s0, 4);
    as.label("skip1");
    as.beq(reg::t0, reg::zero, "skip2");
    as.addi(reg::s0, reg::s0, -4);
    as.label("skip2");
    as.addi(reg::s1, reg::s0, 0); // tracks the widened register
    as.add(reg::s2, reg::s1, reg::t4);
    as.addi(reg::a3, reg::a3, 16);
    as.addi(reg::a4, reg::a4, -1);
    as.blt(reg::a0, reg::a2, "loop");
    as.label("exit");
    as.ecall();

    const auto program = as.assemble();
    const auto ldfg = dfg::Ldfg::build(bodyOf(program, "loop", "exit"));
    ASSERT_TRUE(ldfg.has_value());

    const BodyCertificate cert = absint::analyze(*ldfg);
    EXPECT_TRUE(cert.converged);
    EXPECT_LE(cert.fixpoint_rounds, 2 * riscv::NumUnifiedRegs + 8);
    // The canonical induction is still provable despite the noise.
    ASSERT_TRUE(cert.trip.valid);
    EXPECT_EQ(cert.trip.ind_base, int(reg::a0));
    EXPECT_EQ(cert.trip.step, 4);
}

TEST(AbsintFixpoint, AnalysisIsDeterministic)
{
    riscv::Assembler as;
    as.label("loop");
    as.lw(reg::t0, 0, reg::a0);
    as.addi(reg::t0, reg::t0, 3);
    as.sw(reg::t0, 0, reg::a1);
    as.addi(reg::a0, reg::a0, 4);
    as.addi(reg::a1, reg::a1, 4);
    as.bne(reg::a0, reg::a2, "loop");
    as.label("exit");
    as.ecall();
    const auto program = as.assemble();
    const auto ldfg = dfg::Ldfg::build(bodyOf(program, "loop", "exit"));
    ASSERT_TRUE(ldfg.has_value());

    const BodyCertificate c1 = absint::analyze(*ldfg);
    const BodyCertificate c2 = absint::analyze(*ldfg);
    JsonWriter w1;
    JsonWriter w2;
    c1.toJson(w1);
    c2.toJson(w2);
    EXPECT_EQ(w1.str(), w2.str());
    EXPECT_EQ(c1.mem_nodes, 2u);
    EXPECT_TRUE(c1.allKnown());
}

// --------------------------------------------------------------------
// Trip-count closed forms.
// --------------------------------------------------------------------

/** Analyze a canonical `addi ind, ind, step; <br> ind, bound` loop. */
BodyCertificate
canonicalLoop(int32_t step, void (riscv::Assembler::*br)(
                               uint8_t, uint8_t, const std::string &))
{
    riscv::Assembler as;
    as.label("loop");
    as.sw(reg::t0, 0, reg::a0);
    as.addi(reg::a0, reg::a0, step);
    (as.*br)(reg::a0, reg::a2, "loop");
    as.label("exit");
    as.ecall();
    const auto program = as.assemble();
    const auto ldfg = dfg::Ldfg::build(bodyOf(program, "loop", "exit"));
    EXPECT_TRUE(ldfg.has_value());
    return absint::analyze(*ldfg);
}

uint64_t
tripsFor(const BodyCertificate &cert, uint32_t ind0, uint32_t bound)
{
    riscv::ArchState st;
    st.x[reg::a0] = ind0;
    st.x[reg::a2] = bound;
    const auto inst =
        absint::instantiate(cert, st, absint::MemRegion{0, 1ull << 32});
    return inst.trips_finite ? inst.trips : 0;
}

TEST(AbsintTrips, ClosedFormsMatchConcrete)
{
    // blt: 0,4,8,...; exits at a0 >= 400 after exactly 100 iterations.
    const BodyCertificate blt = canonicalLoop(4, &riscv::Assembler::blt);
    EXPECT_EQ(tripsFor(blt, 0, 400), 100u);
    EXPECT_EQ(tripsFor(blt, 396, 400), 1u);
    EXPECT_EQ(tripsFor(blt, 400, 400), 1u); // first branch not taken
    EXPECT_EQ(tripsFor(blt, 0, 401), 101u); // non-divisible bound

    const BodyCertificate bne = canonicalLoop(4, &riscv::Assembler::bne);
    EXPECT_EQ(tripsFor(bne, 0, 400), 100u);
    EXPECT_EQ(tripsFor(bne, 0, 402), 0u); // never meets: unbounded

    const BodyCertificate bltu = canonicalLoop(8, &riscv::Assembler::bltu);
    EXPECT_EQ(tripsFor(bltu, 16, 96), 10u);

    // bge with a negative step counts down.
    const BodyCertificate bge = canonicalLoop(-2, &riscv::Assembler::bge);
    EXPECT_EQ(tripsFor(bge, 100, 50), 26u); // 98,96,...,48 < 50 exits
}

TEST(AbsintTrips, ConcreteExecutionNeverExceedsBound)
{
    // Cross-validate the closed form against actually running the
    // loop for a grid of starts/bounds/steps and branch ops.
    struct BrCase
    {
        void (riscv::Assembler::*br)(uint8_t, uint8_t, const std::string &);
        Op op;
    };
    const std::vector<BrCase> branches = {
        {&riscv::Assembler::blt, Op::Blt},
        {&riscv::Assembler::bge, Op::Bge},
        {&riscv::Assembler::bltu, Op::Bltu},
        {&riscv::Assembler::bgeu, Op::Bgeu},
        {&riscv::Assembler::bne, Op::Bne},
    };
    for (const auto &bc : branches) {
        for (const int32_t step : {1, 4, -4}) {
            const BodyCertificate cert = canonicalLoop(step, bc.br);
            ASSERT_TRUE(cert.trip.valid) << riscv::opName(bc.op);
            for (const uint32_t ind0 : {0u, 12u, 96u}) {
                for (const uint32_t bound : {0u, 40u, 96u}) {
                    // Concrete run, capped: count branch evaluations.
                    uint64_t concrete = 0;
                    int64_t v = int64_t(ind0);
                    while (concrete < 4096) {
                        v = int64_t(uint32_t(v + step));
                        ++concrete;
                        if (!riscv::branchEval(bc.op, uint32_t(v), bound))
                            break;
                    }
                    const bool exited = concrete < 4096;
                    const uint64_t proven = tripsFor(cert, ind0, bound);
                    if (proven == 0)
                        continue;
                    if (exited) {
                        EXPECT_EQ(proven, concrete)
                            << riscv::opName(bc.op) << " step=" << step
                            << " ind0=" << ind0 << " bound=" << bound;
                        continue;
                    }
                    // Loops that wrap through the 32-bit space can
                    // legitimately run for ~2^30 iterations -- far past
                    // the simulation cap. Validate the closed form at
                    // its endpoints instead: the branch must still be
                    // taken after proven-1 evaluations and not taken
                    // after proven.
                    const auto at = [&](uint64_t i) {
                        return uint32_t(uint64_t(ind0) +
                                        i * uint64_t(int64_t(step)));
                    };
                    EXPECT_TRUE(riscv::branchEval(bc.op, at(proven - 1),
                                                  bound))
                        << riscv::opName(bc.op) << " step=" << step
                        << " ind0=" << ind0 << " bound=" << bound
                        << " proven=" << proven;
                    EXPECT_FALSE(riscv::branchEval(bc.op, at(proven),
                                                   bound))
                        << riscv::opName(bc.op) << " step=" << step
                        << " ind0=" << ind0 << " bound=" << bound
                        << " proven=" << proven;
                }
            }
        }
    }
}

// --------------------------------------------------------------------
// Footprint classification and region gating.
// --------------------------------------------------------------------

TEST(AbsintFootprint, ClassifiesAgainstRegion)
{
    riscv::Assembler as;
    as.label("loop");
    as.lw(reg::t0, 0, reg::a0);
    as.sw(reg::t0, 0, reg::a1);
    as.addi(reg::a0, reg::a0, 4);
    as.addi(reg::a1, reg::a1, 4);
    as.blt(reg::a0, reg::a2, "loop");
    as.label("exit");
    as.ecall();
    const auto program = as.assemble();
    const auto ldfg = dfg::Ldfg::build(bodyOf(program, "loop", "exit"));
    ASSERT_TRUE(ldfg.has_value());
    const BodyCertificate cert = absint::analyze(*ldfg);
    ASSERT_EQ(cert.mem_nodes, 2u);
    ASSERT_TRUE(cert.allKnown());

    riscv::ArchState st;
    st.x[reg::a0] = 0x1000;
    st.x[reg::a1] = 0x2000;
    st.x[reg::a2] = 0x1000 + 400;

    // Region covering both arrays: proven in, with exact bounds.
    auto in = absint::instantiate(cert, st, absint::MemRegion{0x1000, 0x3000});
    ASSERT_TRUE(in.trips_finite);
    EXPECT_EQ(in.trips, 100u);
    EXPECT_EQ(in.footprint, RegionClass::ProvenIn);
    EXPECT_EQ(in.addr_lo, 0x1000u);
    EXPECT_EQ(in.addr_hi, 0x2000u + 399u);

    // Region excluding the store array: provably out.
    auto out = absint::instantiate(cert, st,
                                   absint::MemRegion{0x1000, 0x1800});
    EXPECT_EQ(out.footprint, RegionClass::ProvenOut);

    // Certificate -> diagnostics: AI101 fires for the out case, the
    // in case gets the summary notes.
    verify::Report rin;
    absint::reportCertificate(cert, &in, rin);
    EXPECT_TRUE(rin.hasRule("AI103"));
    EXPECT_TRUE(rin.hasRule("AI105"));
    EXPECT_TRUE(rin.clean());
    verify::Report rout;
    absint::reportCertificate(cert, &out, rout);
    EXPECT_TRUE(rout.hasRule("AI101"));
    EXPECT_FALSE(rout.clean());

    // A watchdog budget follows from the finite trip bound.
    EXPECT_GT(absint::watchdogBudget(cert, in.trips, 1), 0u);
}

TEST(AbsintFootprint, DataDependentAddressIsUnknown)
{
    riscv::Assembler as;
    as.label("loop");
    as.lw(reg::t0, 0, reg::a0);   // index load
    as.lw(reg::t1, 0, reg::t0);   // data-dependent address
    as.addi(reg::a0, reg::a0, 4);
    as.blt(reg::a0, reg::a2, "loop");
    as.label("exit");
    as.ecall();
    const auto program = as.assemble();
    const auto ldfg = dfg::Ldfg::build(bodyOf(program, "loop", "exit"));
    ASSERT_TRUE(ldfg.has_value());
    const BodyCertificate cert = absint::analyze(*ldfg);
    ASSERT_EQ(cert.mem_nodes, 2u);
    EXPECT_TRUE(cert.footprint[0].known);
    EXPECT_FALSE(cert.footprint[1].known);
    EXPECT_FALSE(cert.allKnown());

    verify::Report report;
    absint::reportCertificate(cert, nullptr, report);
    EXPECT_TRUE(report.hasRule("AI102"));
}

// --------------------------------------------------------------------
// Suite-wide soundness: every concretely traced address falls inside
// the proven bounds, concrete iterations never exceed the proven trip
// bound, and enough kernels certify for the runtime gates to matter.
// --------------------------------------------------------------------

TEST(AbsintSuite, FootprintAndTripsSoundOnAllKernels)
{
    int certified_in_region = 0;
    int proven_out = 0;
    for (const auto &entry : workloads::suiteRegistry()) {
        const workloads::Kernel kernel =
            workloads::buildEntry(entry, workloads::SuiteScale{64});

        mem::MainMemory memory;
        kernel.init_data(memory);
        cpu::loadProgram(memory, kernel.program);
        riscv::Emulator emu(memory);
        emu.reset(kernel.program.base_pc);
        kernel.fullRange()(emu.state());
        test::advanceToLoop(emu, kernel);
        ASSERT_EQ(emu.state().pc, kernel.loop_start) << kernel.name;

        const auto body = kernel.loopBody();
        const auto ldfg = dfg::Ldfg::build(body);
        if (!ldfg.has_value())
            continue; // not encodable (e.g. b+tree's pointer walk)

        const BodyCertificate cert = absint::analyze(*ldfg);
        EXPECT_TRUE(cert.converged) << kernel.name;
        const absint::MemRegion region = absint::residentRegion(memory);
        const auto inst = absint::instantiate(cert, emu.state(), region);

        // Acceptance: no suite kernel may be falsely flagged.
        EXPECT_NE(inst.footprint, RegionClass::ProvenOut) << kernel.name;
        if (inst.footprint == RegionClass::ProvenOut)
            ++proven_out;
        if (inst.footprint == RegionClass::ProvenIn && inst.trips_finite)
            ++certified_in_region;

        // Trace one concrete pass of the loop region.
        struct PcRange
        {
            uint64_t lo = UINT64_MAX;
            uint64_t hi = 0;
        };
        std::map<uint32_t, PcRange> traced;
        uint64_t iterations = 0;
        const uint32_t back_pc = body.back().pc;
        emu.setObserver([&](const riscv::TraceEntry &t) {
            if (t.inst.isMem()) {
                auto &r = traced[t.inst.pc];
                r.lo = std::min(r.lo, uint64_t(t.mem_addr));
                r.hi = std::max(r.hi, uint64_t(t.mem_addr));
            }
            iterations += t.inst.pc == back_pc;
        });
        emu.runWhileInRegion(kernel.loop_start, kernel.loop_end,
                             100'000'000);
        emu.setObserver(nullptr);

        if (inst.trips_finite) {
            EXPECT_LE(iterations, inst.trips) << kernel.name;
        }
        for (size_t i = 0; i < cert.footprint.size(); ++i) {
            const auto &fp = cert.footprint[i];
            const auto &range = inst.ranges[i];
            const auto it = traced.find(fp.pc);
            if (it == traced.end() || !range.known || !range.bounded)
                continue;
            EXPECT_GE(it->second.lo, range.lo)
                << kernel.name << " node " << fp.node;
            EXPECT_LE(it->second.hi + fp.size - 1, range.hi)
                << kernel.name << " node " << fp.node;
            // Every traced first-iteration-congruent address obeys the
            // stride class. (Spot-check: the min traced address.)
            if (fp.stride_mod > 1 && fp.step == 0 && fp.base < 0) {
                const Stride s =
                    absint::normalizeStride(fp.stride_mod, fp.stride_rem);
                EXPECT_TRUE(s.contains(int64_t(it->second.lo)))
                    << kernel.name << " node " << fp.node;
            }
        }
    }
    EXPECT_EQ(proven_out, 0);
    EXPECT_GE(certified_in_region, 12);
}

} // namespace
} // namespace mesa
