/**
 * @file
 * Multi-tenant scheduler tests: partition planning, policy ordering,
 * preemptive time-multiplexing with exact context round-trips (the
 * chunked shared run must produce the same memory as the functional
 * golden run), spatial concurrency, determinism, and the controller
 * arbiter routing.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "sched/multicore.hh"
#include "sched/partition.hh"
#include "sched/scheduler.hh"

using namespace mesa;
using namespace mesa::test;
using workloads::Kernel;
using workloads::kernelByName;

namespace
{

/** One prepared tenant: an emulator parked at the loop entry. */
struct PreparedTenant
{
    std::unique_ptr<riscv::Emulator> emu;
};

/** Park @p n chunked threads of @p kernel at its loop entry. */
std::vector<PreparedTenant>
prepare(const Kernel &kernel, mem::MainMemory &memory, int n)
{
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);
    std::vector<PreparedTenant> out;
    for (const auto &chunk : kernel.chunks(n)) {
        auto emu = std::make_unique<riscv::Emulator>(memory);
        emu->reset(kernel.program.base_pc);
        chunk(emu->state());
        advanceToLoop(*emu, kernel);
        out.push_back({std::move(emu)});
    }
    return out;
}

sched::SchedParams
baseParams(int ways, sched::Policy policy = sched::Policy::RoundRobin,
           uint64_t epoch = 256)
{
    sched::SchedParams p;
    p.accel = accel::AccelParams::m128();
    p.spatial_ways = ways;
    p.policy = policy;
    p.epoch_iterations = epoch;
    p.enable_tiling = false;
    return p;
}

} // namespace

TEST(Partition, PlanIsUniformNonOverlappingAndInBounds)
{
    const auto accel = accel::AccelParams::m128();
    for (int ways : {1, 2, 3, 4, accel.rows, accel.rows + 5}) {
        const auto parts = sched::planPartitions(accel, ways);
        ASSERT_FALSE(parts.empty());
        EXPECT_LE(int(parts.size()), accel.rows);
        for (size_t i = 0; i < parts.size(); ++i) {
            // Uniform bands over all columns, inside the grid.
            EXPECT_EQ(parts[i].rows, parts[0].rows);
            EXPECT_EQ(parts[i].cols, accel.cols);
            EXPECT_GE(parts[i].origin_row, 0);
            EXPECT_LE(parts[i].endRow(), accel.rows);
            for (size_t j = i + 1; j < parts.size(); ++j)
                EXPECT_FALSE(parts[i].overlaps(parts[j]))
                    << "ways=" << ways << " " << i << "/" << j;
        }
    }
    // maxWays honors the capacity floor.
    const int w = sched::maxWays(accel, 40);
    const auto parts = sched::planPartitions(accel, w);
    EXPECT_GE(parts[0].capacity(), 40u);
}

TEST(Scheduler, PriorityPolicyOrdersFirstRuns)
{
    const Kernel kernel = kernelByName("nn", {512});
    mem::MainMemory memory;
    auto tenants = prepare(kernel, memory, 3);
    ASSERT_EQ(tenants.size(), 3u);

    sched::MultiTenantScheduler sched(
        baseParams(1, sched::Policy::Priority), memory);
    const auto body = kernel.loopBody();
    const int priorities[] = {1, 3, 2};
    for (size_t t = 0; t < tenants.size(); ++t)
        ASSERT_GE(sched.submit(body, tenants[t].emu->state(), false,
                               ~uint64_t(0), priorities[t]),
                  0);
    const auto res = sched.runAll();

    // Highest priority first: tenant 1, then 2, then 0.
    ASSERT_EQ(res.tenants.size(), 3u);
    EXPECT_LT(res.tenants[1].first_run_cycle,
              res.tenants[2].first_run_cycle);
    EXPECT_LT(res.tenants[2].first_run_cycle,
              res.tenants[0].first_run_cycle);
    // The low-priority tenant absorbs the queueing delay.
    EXPECT_GT(res.tenants[0].wait_cycles,
              res.tenants[1].wait_cycles);
}

TEST(Scheduler, ShortestRemainingRunsSmallestBudgetFirst)
{
    const Kernel kernel = kernelByName("nn", {1024});
    mem::MainMemory memory;
    auto tenants = prepare(kernel, memory, 3);
    ASSERT_EQ(tenants.size(), 3u);

    sched::MultiTenantScheduler sched(
        baseParams(1, sched::Policy::ShortestRemaining), memory);
    const auto body = kernel.loopBody();
    const uint64_t budgets[] = {300, 100, 200};
    for (size_t t = 0; t < tenants.size(); ++t)
        ASSERT_GE(sched.submit(body, tenants[t].emu->state(), false,
                               budgets[t]),
                  0);
    const auto res = sched.runAll();

    ASSERT_EQ(res.tenants.size(), 3u);
    EXPECT_LT(res.tenants[1].first_run_cycle,
              res.tenants[2].first_run_cycle);
    EXPECT_LT(res.tenants[2].first_run_cycle,
              res.tenants[0].first_run_cycle);
    EXPECT_EQ(res.tenants[1].iterations, 100u);
    EXPECT_EQ(res.tenants[2].iterations, 200u);
    EXPECT_EQ(res.tenants[0].iterations, 300u);
}

TEST(Scheduler, RoundRobinTimeMultiplexesWithExactContextRoundTrip)
{
    // Two tenants share ONE partition in 64-iteration epochs: every
    // slice preempts (config reload + architectural state save via
    // live-out writeback, restore via live-in latch). The chunked
    // result must still match the functional golden run bit-exactly.
    const Kernel kernel = kernelByName("nn", {1024});
    const GoldenResult want = runReference(kernel);

    sched::SharedRunParams params;
    params.sched = baseParams(1, sched::Policy::RoundRobin, 64);
    mem::MainMemory memory;
    const auto res = sched::runShared(params, memory, kernel, 2);

    EXPECT_TRUE(res.all_completed);
    ASSERT_EQ(res.sched.tenants.size(), 2u);
    for (const auto &t : res.sched.tenants) {
        EXPECT_TRUE(t.completed);
        EXPECT_GT(t.slices, 2u) << "epoch slicing must preempt";
        EXPECT_GE(t.switches, 2u) << "alternation must reconfigure";
    }
    EXPECT_GT(res.sched.total_switch_cycles, 0u);
    EXPECT_TRUE(sameMemory(memory.snapshot(), want.memory));
}

TEST(Scheduler, SpatialPartitionsRunConcurrently)
{
    const Kernel kernel = kernelByName("nn", {1024});

    sched::SharedRunParams params;
    params.sched = baseParams(2);
    mem::MainMemory memory;
    const auto res = sched::runShared(params, memory, kernel, 2);

    EXPECT_TRUE(res.all_completed);
    EXPECT_EQ(res.sched.ways, 2);
    // Both tenants start immediately on their own partition...
    ASSERT_EQ(res.sched.tenants.size(), 2u);
    EXPECT_EQ(res.sched.tenants[0].wait_cycles, 0u);
    EXPECT_EQ(res.sched.tenants[1].wait_cycles, 0u);
    // ...so the makespan is far below the serialized sum.
    uint64_t total_busy = 0;
    for (const auto &t : res.sched.tenants)
        total_busy += t.run_cycles + t.switch_cycles;
    EXPECT_LT(res.makespan_cycles, total_busy);
    // Slices on different partitions overlap in time.
    bool overlap = false;
    for (const auto &a : res.sched.timeline)
        for (const auto &b : res.sched.timeline)
            if (a.partition != b.partition && a.start < b.start + b.cycles &&
                b.start < a.start + a.cycles)
                overlap = true;
    EXPECT_TRUE(overlap);
}

TEST(Scheduler, ScheduleIsDeterministic)
{
    const Kernel kernel = kernelByName("kmeans", {512});
    auto once = [&] {
        sched::SharedRunParams params;
        params.sched = baseParams(2, sched::Policy::RoundRobin, 128);
        mem::MainMemory memory;
        return sched::runShared(params, memory, kernel, 3);
    };
    const auto a = once();
    const auto b = once();
    ASSERT_EQ(a.sched.timeline.size(), b.sched.timeline.size());
    for (size_t i = 0; i < a.sched.timeline.size(); ++i)
        EXPECT_TRUE(a.sched.timeline[i] == b.sched.timeline[i])
            << "slice " << i;
    EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
}

TEST(Scheduler, ControllerRoutesOffloadsThroughArbiter)
{
    const Kernel kernel = kernelByName("nn", {1024});
    const GoldenResult want = runReference(kernel);

    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    core::MesaParams params;
    core::MesaController mesa(params, memory);
    sched::MultiTenantScheduler sched(baseParams(2), memory);
    mesa.setOffloadArbiter(&sched, /*tenant=*/7, /*priority=*/1);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    advanceToLoop(emu, kernel);
    const auto os =
        mesa.offloadLoop(kernel.loopBody(), emu.state(), false);
    emu.run(50'000'000);

    ASSERT_TRUE(os.has_value());
    EXPECT_EQ(sched.tenantCount(), 1u)
        << "the request must reach the shared scheduler";
    EXPECT_GT(os->accel_iterations, 0u);
    EXPECT_GE(os->sched_switches, 1u);
    EXPECT_TRUE(emu.halted());
    EXPECT_TRUE(sameMemory(memory.snapshot(), want.memory));
}
