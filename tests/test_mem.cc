/**
 * @file
 * Memory-system tests: main memory, set-associative caches, the
 * two-level hierarchy with AMAT counters, and the accelerator-side
 * load/store unit (ordering, forwarding, invalidation, ports).
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/lsq.hh"
#include "mem/memory.hh"
#include "util/logging.hh"

namespace
{

using namespace mesa;
using namespace mesa::mem;
using riscv::Op;

TEST(MainMemory, ReadWriteWidths)
{
    MainMemory m;
    m.write32(0x1000, 0xDEADBEEF);
    EXPECT_EQ(m.read32(0x1000), 0xDEADBEEFu);
    EXPECT_EQ(m.read16(0x1000), 0xBEEFu);
    EXPECT_EQ(m.read16(0x1002), 0xDEADu);
    EXPECT_EQ(m.read8(0x1003), 0xDEu);

    m.write8(0x1001, 0x42);
    EXPECT_EQ(m.read32(0x1000), 0xDEAD42EFu);

    // Unaligned access.
    m.write32(0x2002, 0x11223344);
    EXPECT_EQ(m.read32(0x2002), 0x11223344u);

    // Cross-page access.
    m.write32(0x2FFE, 0xAABBCCDD);
    EXPECT_EQ(m.read32(0x2FFE), 0xAABBCCDDu);

    // Untouched memory reads zero.
    EXPECT_EQ(m.read32(0x999000), 0u);
}

TEST(MainMemory, FloatAccessAndSnapshot)
{
    MainMemory m;
    m.writeFloat(0x3000, 3.25f);
    EXPECT_FLOAT_EQ(m.readFloat(0x3000), 3.25f);

    auto snap = m.snapshot();
    EXPECT_EQ(snap.size(), m.residentPages());
    m.writeFloat(0x3000, 9.5f);
    // Snapshot is a deep copy.
    MainMemory m2;
    EXPECT_FLOAT_EQ(m.readFloat(0x3000), 9.5f);
    const auto &page = snap.at(0x3000 >> 12);
    float old;
    std::memcpy(&old, page.data(), 4);
    EXPECT_FLOAT_EQ(old, 3.25f);
}

TEST(Cache, HitsAndMisses)
{
    CacheParams p{1024, 2, 64, 1};
    Cache c("t", p);
    EXPECT_FALSE(c.access(0x0, false)); // cold miss
    EXPECT_TRUE(c.access(0x0, false));
    EXPECT_TRUE(c.access(0x3C, false)); // same line
    EXPECT_FALSE(c.access(0x40, false));
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B lines, 2 sets -> way capacity 2 per set.
    CacheParams p{256, 2, 64, 1};
    Cache c("t", p);
    ASSERT_EQ(c.numSets(), 2u);
    // Three lines mapping to set 0: 0x000, 0x080, 0x100.
    c.access(0x000, false);
    c.access(0x080, false);
    c.access(0x000, false); // touch 0x000 -> 0x080 becomes LRU
    c.access(0x100, false); // evicts 0x080
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x080));
    EXPECT_TRUE(c.probe(0x100));
}

TEST(Cache, DirtyWritebacks)
{
    CacheParams p{128, 1, 64, 1}; // direct-mapped, 2 sets
    Cache c("t", p);
    c.access(0x000, true);  // dirty
    c.access(0x080, false); // evicts dirty 0x000 -> writeback
    EXPECT_EQ(c.writebacks(), 1u);
    c.access(0x100, false); // evicts clean 0x080 -> no writeback
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, BadGeometryRejected)
{
    EXPECT_THROW((Cache("t", CacheParams{100, 3, 48, 1})),
                 mesa::FatalError);
    EXPECT_THROW((Cache("t", CacheParams{1024, 0, 64, 1})),
                 mesa::FatalError);
}

TEST(Hierarchy, LatencyComposition)
{
    HierarchyParams p;
    p.l1 = {1024, 2, 64, 2};
    p.l2 = {16384, 4, 64, 10};
    p.dram_latency = 100;
    MemHierarchy h(p);

    // Cold: L1 miss + L2 miss + DRAM.
    EXPECT_EQ(h.accessLatency(0x0, false), 2u + 10u + 100u);
    // Warm: L1 hit.
    EXPECT_EQ(h.accessLatency(0x0, false), 2u);
    EXPECT_EQ(h.dramAccesses(), 1u);
    EXPECT_GT(h.amat(), 0.0);
}

TEST(Hierarchy, SharedL2)
{
    HierarchyParams p;
    Cache shared("l2", p.l2);
    MemHierarchy a(p, &shared);
    MemHierarchy b(p, &shared);

    a.accessLatency(0x5000, false); // a warms the shared L2
    // b misses its own L1 but hits the shared L2.
    const uint32_t lat = b.accessLatency(0x5000, false);
    EXPECT_EQ(lat, p.l1.hit_latency + p.l2.hit_latency);
    EXPECT_EQ(b.dramAccesses(), 0u);
}

TEST(Hierarchy, NextLinePrefetcherHelpsStreams)
{
    HierarchyParams with;
    with.next_line_prefetch = true;
    HierarchyParams without;
    MemHierarchy hp(with), hn(without);

    uint64_t cyc_with = 0, cyc_without = 0;
    for (uint32_t i = 0; i < 4096; i += 4) {
        cyc_with += hp.accessLatency(0x40000 + i, false);
        cyc_without += hn.accessLatency(0x40000 + i, false);
    }
    EXPECT_LT(cyc_with, cyc_without)
        << "forward stream should hit prefetched lines";
    // The prefetcher fetches each next line exactly once: DRAM
    // traffic must not blow up.
    EXPECT_LE(hp.dramAccesses(), hn.dramAccesses() + 2);
}

TEST(Hierarchy, PrefetchWarmsWithoutAmatNoise)
{
    HierarchyParams p;
    MemHierarchy h(p);
    h.prefetch(0x8000);
    EXPECT_EQ(h.accesses(), 0u); // AMAT untouched
    EXPECT_EQ(h.accessLatency(0x8000, false), p.l1.hit_latency);
}

// ---------------------------------------------------------------------
// Load/store unit.
// ---------------------------------------------------------------------

struct LsuFixture : ::testing::Test
{
    MainMemory memory;
    MemHierarchy hierarchy;
    PortPool ports{2};
    LoadStoreUnit lsu{memory, hierarchy, ports};
};

TEST_F(LsuFixture, StoreLoadForwardingSameIteration)
{
    lsu.beginIteration();
    lsu.store(1, 0x1000, 42, Op::Sw, 10);
    const LoadResult r = lsu.load(2, 0x1000, Op::Lw, 5);
    EXPECT_TRUE(r.forwarded);
    EXPECT_EQ(r.value, 42u);
    // Forwarded one broadcast cycle after the store data (cycle 10).
    EXPECT_EQ(r.done_cycle, 11u);
    EXPECT_TRUE(r.invalidated); // load was ready before the store
    EXPECT_EQ(lsu.forwards(), 1u);
}

TEST_F(LsuFixture, OlderLoadDoesNotForwardFromYoungerStore)
{
    lsu.beginIteration();
    lsu.store(5, 0x1000, 42, Op::Sw, 0);
    const LoadResult r = lsu.load(3, 0x1000, Op::Lw, 0);
    EXPECT_FALSE(r.forwarded);
    EXPECT_EQ(r.value, 0u); // memory value, not the younger store's
}

TEST_F(LsuFixture, CommitInProgramOrder)
{
    lsu.beginIteration();
    // Two stores to the same address, issued out of order.
    lsu.store(7, 0x2000, 7, Op::Sw, 50);
    lsu.store(3, 0x2000, 3, Op::Sw, 90); // older but later-ready
    lsu.commitStores();
    // Program order: seq 3 then seq 7 -> final value is 7.
    EXPECT_EQ(memory.read32(0x2000), 7u);
}

TEST_F(LsuFixture, PeekAppliesOlderStores)
{
    lsu.beginIteration();
    memory.write32(0x3000, 0x11111111);
    lsu.store(2, 0x3000, 0xAABBCCDD, Op::Sw, 0);
    lsu.store(4, 0x3001, 0xEE, Op::Sb, 0);
    EXPECT_EQ(lsu.peek(3, 0x3000, Op::Lw), 0xAABBCCDDu);
    EXPECT_EQ(lsu.peek(5, 0x3000, Op::Lw), 0xAABBEEDDu);
    EXPECT_EQ(lsu.peek(1, 0x3000, Op::Lw), 0x11111111u);
}

TEST_F(LsuFixture, PartialWidthOverlapInvalidates)
{
    lsu.beginIteration();
    lsu.store(1, 0x4000, 0xFF, Op::Sb, 20);
    const LoadResult r = lsu.load(2, 0x4000, Op::Lw, 0);
    EXPECT_FALSE(r.forwarded);
    EXPECT_TRUE(r.invalidated);
    EXPECT_EQ(r.value & 0xFFu, 0xFFu);
    EXPECT_GE(r.done_cycle, 20u);
}

TEST_F(LsuFixture, PortContentionSerializes)
{
    lsu.beginIteration();
    // Four loads all ready at cycle 0 with 2 ports: issue cycles must
    // spread (0, 0, 1, 1).
    uint64_t max_done = 0;
    for (unsigned i = 0; i < 4; ++i) {
        const LoadResult r =
            lsu.load(i, 0x5000 + 64 * i, Op::Lw, 0);
        max_done = std::max(max_done, r.done_cycle);
    }
    // A single access takes hierarchy latency L; with serialization
    // the last one finishes at >= 1 + L.
    MemHierarchy fresh;
    const uint32_t single = fresh.accessLatency(0x9000, false);
    EXPECT_GE(max_done, 1u + single);
}

TEST_F(LsuFixture, AmatCountersPerEntry)
{
    lsu.beginIteration();
    lsu.load(0, 0x6000, Op::Lw, 0);
    lsu.load(0, 0x6000, Op::Lw, 100); // second, now a cache hit
    EXPECT_GT(lsu.entryAmat(0), 0.0);
    EXPECT_GT(lsu.overallAmat(), 0.0);
    lsu.resetStats();
    EXPECT_EQ(lsu.loads(), 0u);
    EXPECT_EQ(lsu.entryAmat(0), 0.0);
}

TEST(PortPool, IdealWhenHuge)
{
    PortPool pool(64);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(pool.acquire(0), 0u);
    EXPECT_EQ(pool.acquire(0), 1u);
    pool.reset();
    EXPECT_EQ(pool.acquire(0), 0u);
}

} // namespace
