/**
 * @file
 * Whole-pipeline fuzzing: randomly generated loop bodies (integer and
 * FP dataflow, loads/stores with overlapping addresses, predicated
 * regions, random loop-carried temporaries) are offloaded through the
 * full encode -> map -> configure -> execute stack and compared
 * bit-for-bit against the functional emulator. The controller is
 * always given the parallel hint, so the fuzzer also attacks the
 * tiling-safety analysis: a loop with a carried recurrence that gets
 * tiled anyway shows up as a mismatch here.
 */

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "absint/certificate.hh"
#include "dfg/analysis.hh"
#include "dfg/unroll.hh"
#include "helpers.hh"
#include "interconnect/folded.hh"
#include "mesa/config_builder.hh"
#include "mesa/mapper.hh"
#include "riscv/assembler.hh"
#include "util/json.hh"
#include "util/parallel.hh"
#include "verify/verifier.hh"

namespace
{

using namespace mesa;
using namespace mesa::test;
using namespace mesa::riscv::reg;
using riscv::Assembler;

constexpr uint32_t ArrIn = 0x00100000;
constexpr uint32_t ArrOut = 0x00200000;

struct GeneratedLoop
{
    workloads::Kernel kernel;
    int int_ops = 0;
    int fp_ops = 0;
    int loads = 0;
    int stores = 0;
    int branches = 0;
};

/** Generate a random but well-formed loop body. */
GeneratedLoop
generate(uint32_t seed)
{
    std::mt19937 rng(seed);
    auto pick = [&](int lo, int hi) {
        return int(std::uniform_int_distribution<int>(lo, hi)(rng));
    };

    GeneratedLoop gen;
    Assembler as;

    // Register pools. a0/a1 are pointer inductions, a2 the bound;
    // a3..a5 and fa0..fa2 are constant live-ins.
    std::vector<uint8_t> int_regs = {t0, t1, t2, t3, t4, s2, s3};
    std::vector<uint8_t> fp_regs = {ft0, ft1, ft2, ft3, ft4, ft5};
    std::vector<uint8_t> int_ready = {a3, a4, a5};
    std::vector<uint8_t> fp_ready = {fa0, fa1, fa2};

    as.label("loop");
    const int body_ops = pick(6, 22);
    int until_join = 0; // inside a predicated region when > 0
    int label_id = 0;

    for (int i = 0; i < body_ops; ++i) {
        if (until_join > 0 && --until_join == 0)
            as.label("join" + std::to_string(label_id));

        const int kind = pick(0, 9);
        if (kind <= 3) {
            // Integer ALU op with random initialized sources.
            const uint8_t rd =
                int_regs[size_t(pick(0, int(int_regs.size()) - 1))];
            const uint8_t rs1 =
                int_ready[size_t(pick(0, int(int_ready.size()) - 1))];
            const uint8_t rs2 =
                int_ready[size_t(pick(0, int(int_ready.size()) - 1))];
            switch (pick(0, 6)) {
              case 0: as.add(rd, rs1, rs2); break;
              case 1: as.sub(rd, rs1, rs2); break;
              case 2: as.xor_(rd, rs1, rs2); break;
              case 3: as.and_(rd, rs1, rs2); break;
              case 4: as.or_(rd, rs1, rs2); break;
              case 5: as.mul(rd, rs1, rs2); break;
              case 6: as.slt(rd, rs1, rs2); break;
            }
            int_ready.push_back(rd);
            ++gen.int_ops;
        } else if (kind <= 5) {
            // FP op.
            const uint8_t rd =
                fp_regs[size_t(pick(0, int(fp_regs.size()) - 1))];
            const uint8_t rs1 =
                fp_ready[size_t(pick(0, int(fp_ready.size()) - 1))];
            const uint8_t rs2 =
                fp_ready[size_t(pick(0, int(fp_ready.size()) - 1))];
            switch (pick(0, 3)) {
              case 0: as.fadd_s(rd, rs1, rs2); break;
              case 1: as.fsub_s(rd, rs1, rs2); break;
              case 2: as.fmul_s(rd, rs1, rs2); break;
              case 3: as.fmin_s(rd, rs1, rs2); break;
            }
            fp_ready.push_back(rd);
            ++gen.fp_ops;
        } else if (kind == 6) {
            // Load from the input stream.
            const uint8_t rd =
                int_regs[size_t(pick(0, int(int_regs.size()) - 1))];
            as.lw(rd, 4 * pick(0, 3), a0);
            int_ready.push_back(rd);
            ++gen.loads;
        } else if (kind == 7) {
            // FP load.
            const uint8_t rd =
                fp_regs[size_t(pick(0, int(fp_regs.size()) - 1))];
            as.flw(rd, 4 * pick(0, 3), a0);
            fp_ready.push_back(rd);
            ++gen.fp_ops;
            ++gen.loads;
        } else if (kind == 8) {
            // Store a computed value to the output stream.
            const uint8_t rs =
                int_ready[size_t(pick(0, int(int_ready.size()) - 1))];
            if (rs >= 32) // never happens for int pool, guard anyway
                continue;
            as.sw(rs, 4 * pick(0, 3), a1);
            ++gen.stores;
        } else if (until_join == 0 && i + 2 < body_ops) {
            // Open a predicated region guarding the next 1..3 ops.
            const uint8_t rs =
                int_ready[size_t(pick(0, int(int_ready.size()) - 1))];
            ++label_id;
            if (pick(0, 1))
                as.beq(rs, zero, "join" + std::to_string(label_id));
            else
                as.bne(rs, zero, "join" + std::to_string(label_id));
            until_join = pick(1, 3);
            ++gen.branches;
        }
    }
    if (until_join > 0)
        as.label("join" + std::to_string(label_id));

    // Always store something so the loop has an observable effect.
    as.sw(int_ready.back() < 32 ? int_ready.back() : a3, 12, a1);
    as.fsw(fp_ready.back(), 16, a1);
    as.addi(a0, a0, 4);
    as.addi(a1, a1, pick(1, 5) * 4);
    as.blt(a0, a2, "loop");
    as.label("exit");
    as.ecall();

    auto &k = gen.kernel;
    k.name = "fuzz-" + std::to_string(seed);
    k.parallel = true; // the controller must decide tiling safety
    k.iterations = 96;
    k.program = as.assemble();
    k.loop_start = k.program.labelPc("loop");
    k.loop_end = k.program.labelPc("exit");
    k.init_data = [seed](mem::MainMemory &m) {
        std::mt19937 r(seed ^ 0x5A5A5A5A);
        for (uint32_t i = 0; i < 4096; i += 4)
            m.write32(ArrIn + i, uint32_t(r()));
        // Make the output stream resident too (zero pages compare
        // equal to absent ones, so this is observationally neutral):
        // the absint footprint certifier classifies store targets
        // against the resident region, and an honest in-region
        // verdict needs the outputs inside it.
        for (uint32_t i = 0; i < 2 * mem::MainMemory::PageSize; i += 4)
            m.write32(ArrOut + i, 0);
    };
    const uint32_t out_step = [&] {
        // Recover the a1 step from the assembled body (penultimate
        // addi before the branch).
        const auto body = k.loopBody();
        return uint32_t(body[body.size() - 2].imm);
    }();
    k.init_range = [seed, out_step](riscv::ArchState &st, uint64_t b,
                                    uint64_t e) {
        std::mt19937 r(seed ^ 0x33CC33CC);
        st.x[a0] = ArrIn + uint32_t(4 * b);
        st.x[a1] = ArrOut + uint32_t(out_step * b);
        st.x[a2] = ArrIn + uint32_t(4 * e);
        st.x[a3] = uint32_t(r());
        st.x[a4] = uint32_t(r());
        st.x[a5] = uint32_t(r() % 7); // small value: branches vary
        st.f[fa0] = uint32_t(r());
        st.f[fa1] = uint32_t(r());
        st.f[fa2] = std::bit_cast<uint32_t>(1.5f);
        // Temporaries start live: loop-carried uses read these.
        for (uint8_t reg : {t0, t1, t2, t3, t4, s2, s3})
            st.x[reg] = uint32_t(r());
        for (uint8_t reg : {ft0, ft1, ft2, ft3, ft4, ft5})
            st.f[reg] = uint32_t(r());
    };
    return gen;
}

class PipelineFuzz
    : public ::testing::TestWithParam<std::tuple<uint32_t, int>>
{
  protected:
    /** Configuration axis: default / small-folded / unrolled. */
    static core::MesaParams
    configFor(int axis)
    {
        core::MesaParams params;
        switch (axis) {
          case 1:
            // Tiny folded array: every body time-multiplexes.
            params.accel.rows = 4;
            params.accel.cols = 4;
            params.accel.mem_ports = 8;
            params.enable_time_multiplexing = true;
            params.max_time_multiplex = 4;
            break;
          case 2:
            params.enable_unrolling = true;
            break;
          default:
            break;
        }
        return params;
    }
};

TEST_P(PipelineFuzz, RandomLoopMatchesEmulatorExactly)
{
    const auto [seed, axis] = GetParam();
    const GeneratedLoop gen = generate(seed);
    const auto &kernel = gen.kernel;

    const GoldenResult want = runReference(kernel);

    const OffloadRun run = runWithOffload(kernel, configFor(axis));
    if (!run.stats.has_value())
        GTEST_SKIP() << "body did not map (acceptable)";

    EXPECT_TRUE(sameMemory(run.memory, want.memory))
        << "seed " << seed << " axis " << axis << " ops i"
        << gen.int_ops << " f" << gen.fp_ops << " l" << gen.loads
        << " s" << gen.stores << " b" << gen.branches << " tiles "
        << run.stats->tile_factor;
    EXPECT_EQ(run.state, want.state)
        << "seed " << seed << " axis " << axis;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PipelineFuzz,
    ::testing::Combine(::testing::Range(1u, 101u),
                       ::testing::Values(0, 1, 2)),
    [](const auto &param_info) {
        return "s" + std::to_string(std::get<0>(param_info.param)) + "_cfg" +
               std::to_string(std::get<1>(param_info.param));
    });

/**
 * Pipeline soundness fuzzing: every random body the pipeline accepts
 * must produce artifacts the static verifier (src/verify) finds no
 * error in — the translation invariants hold for arbitrary inputs,
 * not just the suite kernels. Same deterministic seeds and the same
 * three configuration axes as the end-to-end fuzz above, but no
 * execution: encode -> map -> configure only, so the suite stays
 * cheap enough to widen — and cheap enough to shard: the 450
 * (seed, axis) cases run on the parallel engine, each case entirely
 * self-contained, with outcomes committed in case order.
 */
struct VerifierFuzzOutcome
{
    bool skipped = false;
    std::string skip_reason;
    std::string error; ///< Empty = verified clean.
    /** Serialized absint certificate (the determinism cross-check). */
    std::string cert_json;
};

std::string
render(const verify::Report &report)
{
    std::ostringstream os;
    report.printTable(os);
    return os.str();
}

VerifierFuzzOutcome
verifierFuzzCase(uint32_t seed, int axis)
{
    VerifierFuzzOutcome out;
    const GeneratedLoop gen = generate(seed);
    std::vector<riscv::Instruction> body = gen.kernel.loopBody();

    accel::AccelParams accel = accel::AccelParams::m128();
    int max_tm = 1;
    if (axis == 1) {
        // Tiny folded array: every body time-multiplexes.
        accel.rows = 4;
        accel.cols = 4;
        max_tm = 4;
    } else if (axis == 2) {
        if (auto unrolled = dfg::unrollBody(body, 2))
            body = std::move(unrolled->body);
    }

    const size_t capacity = accel.capacity();
    auto ldfg = dfg::Ldfg::build(body, accel.op_latency,
                                 capacity * size_t(max_tm));
    if (!ldfg) {
        out.skipped = true;
        out.skip_reason = "body not encodable (acceptable)";
        return out;
    }

    // Pass 1 holds for every graph the encoder emits.
    const verify::Report dfg_report =
        verify::verifyLdfg(*ldfg, accel.op_latency);
    if (dfg_report.errorCount() != 0) {
        out.error = "LDFG verify failed\n" + render(dfg_report);
        return out;
    }

    ic::AccelNocInterconnect noc(accel.rows, accel.cols,
                                 accel.noc_slice_width);
    const int tm = int((ldfg->size() + capacity - 1) / capacity);
    if (tm > max_tm) {
        out.skipped = true;
        out.skip_reason = "body exceeds the fold budget (acceptable)";
        return out;
    }

    core::MapResult map;
    core::ConfigOptions options;
    if (tm > 1) {
        accel::AccelParams virt = accel;
        virt.rows *= tm;
        ic::FoldedInterconnect folded(noc, accel.rows);
        core::InstructionMapper mapper(virt, folded, {});
        map = mapper.map(*ldfg);
        options.time_multiplex = tm;
    } else {
        core::InstructionMapper mapper(accel, noc, {});
        map = mapper.map(*ldfg);
    }

    // Tiling under the controller's legality conditions; pipelining
    // always on, so the annotation-heavy paths get exercised.
    const bool unknown_stores =
        !dfg::findUnknownAddressStores(*ldfg).empty();
    const auto inductions = dfg::findInductionRegs(*ldfg);
    bool reg_carried = false;
    for (int reg : ldfg->writtenRegs()) {
        if (!ldfg->liveIns().count(reg))
            continue;
        bool is_induction = false;
        for (const auto &ind : inductions)
            is_induction = is_induction || ind.unified_reg == reg;
        if (!is_induction)
            reg_carried = true;
    }
    options.pipelined = true;
    options.tile_factor =
        (tm == 1 && !unknown_stores && !reg_carried)
            ? std::max(1, core::ConfigBlock::maxTileFactor(map.sdfg,
                                                           accel))
            : 1;

    core::ConfigBlock config_block(accel);
    const accel::AcceleratorConfig config = config_block.build(
        *ldfg, map.sdfg, options, body.front().pc,
        body.back().pc + 4);

    verify::Report report;
    if (tm > 1) {
        ic::FoldedInterconnect folded(noc, accel.rows);
        report = verify::verifyPipeline(*ldfg, map.sdfg, map.unmapped,
                                        config, accel, folded);
    } else {
        report = verify::verifyPipeline(*ldfg, map.sdfg, map.unmapped,
                                        config, accel, noc);
    }
    if (report.errorCount() != 0) {
        std::ostringstream os;
        os << "pipeline verify failed: nodes " << ldfg->size()
           << " tm " << tm << " tiles " << config.tileCount() << "\n"
           << render(report);
        out.error = os.str();
        return out;
    }

    // Abstract interpretation over the same accepted body: the
    // widening fixpoint must terminate (converged), and since the
    // generator makes both streams resident, a proven-out-of-region
    // verdict on any node is a false positive by construction.
    const absint::BodyCertificate cert = absint::analyze(*ldfg);
    if (!cert.converged) {
        out.error = "absint fixpoint diverged";
        return out;
    }
    JsonWriter w;
    cert.toJson(w);
    out.cert_json = w.str();

    mem::MainMemory memory;
    gen.kernel.init_data(memory);
    cpu::loadProgram(memory, gen.kernel.program);
    riscv::Emulator emu(memory);
    emu.reset(gen.kernel.program.base_pc);
    gen.kernel.fullRange()(emu.state());
    // Fuzz programs start at the loop head: no preamble to run.
    const absint::CertificateInstance inst = absint::instantiate(
        cert, emu.state(), absint::residentRegion(memory));
    if (inst.footprint == absint::RegionClass::ProvenOut) {
        std::ostringstream os;
        os << "false proven-out: nodes " << ldfg->size() << " span ["
           << inst.addr_lo << ", " << inst.addr_hi << ")";
        out.error = os.str();
    }
    return out;
}

TEST(VerifierFuzz, AcceptedBodiesVerifyWithZeroErrors)
{
    constexpr uint32_t MaxSeed = 150;
    constexpr int Axes = 3;
    const size_t n = size_t(MaxSeed) * Axes;

    const auto outcomes = parallelMapOrdered<VerifierFuzzOutcome>(
        n, defaultJobs(), [&](size_t i) {
            const uint32_t seed = uint32_t(1 + i / Axes);
            const int axis = int(i % Axes);
            return verifierFuzzCase(seed, axis);
        });

    size_t skipped = 0;
    for (size_t i = 0; i < n; ++i) {
        const auto &o = outcomes[i];
        if (o.skipped) {
            ++skipped;
            continue;
        }
        EXPECT_TRUE(o.error.empty())
            << "seed " << (1 + i / Axes) << " axis " << (i % Axes)
            << ": " << o.error;
    }
    // The generator is tuned so most bodies are encodable; a sudden
    // jump in skips means the fuzzer stopped testing anything.
    EXPECT_LT(skipped, n / 2) << "fuzzer skipped too many cases";

    // Certificates must not depend on the worker count: recompute a
    // spread of cases single-threaded and compare the serialized
    // certificate byte-for-byte against the parallel run above.
    size_t compared = 0;
    for (size_t i = 0; i < n; i += 5) {
        if (outcomes[i].skipped)
            continue;
        const auto serial = verifierFuzzCase(uint32_t(1 + i / Axes),
                                             int(i % Axes));
        EXPECT_EQ(outcomes[i].cert_json, serial.cert_json)
            << "certificate differs across job counts at seed "
            << (1 + i / Axes) << " axis " << (i % Axes);
        ++compared;
    }
    EXPECT_GT(compared, 0u);
}

} // namespace
