/**
 * @file
 * Service-layer tests: traffic-generator determinism and substream
 * purity, admission-control backpressure accounting, SLO bookkeeping
 * against hand-computed values, graceful-drain semantics, and the two
 * headline guarantees — same-seed runs are byte-identical, and in
 * closed-loop direct mode the functional digest is identical for any
 * backend count (multi-backend sharding is functionally transparent).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>

#include "service/backend.hh"
#include "service/job.hh"
#include "service/queue.hh"
#include "service/service.hh"
#include "service/slo.hh"
#include "service/traffic.hh"
#include "util/json.hh"

using namespace mesa;
using namespace mesa::service;

namespace
{

TrafficParams
smallOpenLoop()
{
    TrafficParams p;
    p.tenants = 8;
    p.horizon_cycles = 200'000;
    p.mean_interarrival = 20'000.0;
    p.seed = 7;
    return p;
}

ServiceParams
smallClosedLoop(int backends)
{
    ServiceParams p;
    p.traffic.profile = TrafficProfile::ClosedLoop;
    p.traffic.tenants = 10;
    p.traffic.jobs_per_tenant = 3;
    p.traffic.seed = 11;
    p.backends = backends;
    return p;
}

/** A synthetic, internally consistent job record. */
JobRecord
record(int tenant, QosClass qos, uint64_t arrival, uint64_t wait,
       uint64_t service)
{
    JobRecord rec;
    rec.job.tenant = tenant;
    rec.job.qos = qos;
    rec.job.arrival_cycle = arrival;
    rec.dispatch_cycle = arrival + wait;
    rec.queue_wait_cycles = wait;
    rec.service_cycles = service;
    rec.completion_cycle = rec.dispatch_cycle + service;
    rec.phases[prof::Phase::Compute] = service;
    return rec;
}

} // namespace

// ---------------------------------------------------------------------
// Traffic generator.
// ---------------------------------------------------------------------

TEST(ServiceTraffic, SameSeedReplaysIdentically)
{
    const TrafficGenerator a(smallOpenLoop());
    const TrafficGenerator b(smallOpenLoop());
    const auto ja = a.openLoopArrivals();
    const auto jb = b.openLoopArrivals();
    ASSERT_FALSE(ja.empty());
    ASSERT_EQ(ja.size(), jb.size());
    for (size_t i = 0; i < ja.size(); ++i) {
        EXPECT_EQ(ja[i].arrival_cycle, jb[i].arrival_cycle);
        EXPECT_EQ(ja[i].tenant, jb[i].tenant);
        EXPECT_EQ(ja[i].seq, jb[i].seq);
        EXPECT_EQ(ja[i].kernel, jb[i].kernel);
        EXPECT_EQ(ja[i].iterations, jb[i].iterations);
        EXPECT_EQ(int(ja[i].qos), int(jb[i].qos));
    }

    TrafficParams other = smallOpenLoop();
    other.seed = 8;
    const auto jc = TrafficGenerator(other).openLoopArrivals();
    bool differs = jc.size() != ja.size();
    for (size_t i = 0; !differs && i < ja.size(); ++i)
        differs = ja[i].arrival_cycle != jc[i].arrival_cycle ||
                  ja[i].kernel != jc[i].kernel;
    EXPECT_TRUE(differs);
}

TEST(ServiceTraffic, ArrivalsAreSortedAndContentIsWellFormed)
{
    TrafficParams p = smallOpenLoop();
    p.min_iterations = 32;
    p.max_iterations = 256;
    const TrafficGenerator gen(p);
    const auto jobs = gen.openLoopArrivals();
    ASSERT_FALSE(jobs.empty());
    const std::set<std::string> roster(gen.kernels().begin(),
                                       gen.kernels().end());
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (i > 0) {
            EXPECT_GE(jobs[i].arrival_cycle,
                      jobs[i - 1].arrival_cycle);
        }
        EXPECT_LT(jobs[i].arrival_cycle, p.horizon_cycles);
        EXPECT_TRUE(roster.count(jobs[i].kernel));
        // Power-of-two size inside the configured range.
        EXPECT_GE(jobs[i].iterations, p.min_iterations);
        EXPECT_LE(jobs[i].iterations, p.max_iterations);
        EXPECT_EQ(jobs[i].iterations & (jobs[i].iterations - 1), 0u);
        // QoS is a session property: constant per tenant.
        EXPECT_EQ(int(jobs[i].qos), int(gen.tenantQos(jobs[i].tenant)));
    }
}

TEST(ServiceTraffic, JobContentIsPureInTenantAndSeq)
{
    // Content must not depend on when the job is asked for — the
    // closed-loop backend-count invariance rests on this.
    TrafficParams p = smallOpenLoop();
    p.profile = TrafficProfile::ClosedLoop;
    const TrafficGenerator gen(p);
    const auto early = gen.closedLoopJob(3, 2, 100);
    const auto late = gen.closedLoopJob(3, 2, 987'654);
    ASSERT_TRUE(early && late);
    EXPECT_EQ(early->kernel, late->kernel);
    EXPECT_EQ(early->iterations, late->iterations);
    EXPECT_EQ(int(early->qos), int(late->qos));
    // The think gap is the same draw, applied to a different base.
    EXPECT_EQ(early->arrival_cycle - 100,
              late->arrival_cycle - 987'654);
    // Session ends after jobs_per_tenant.
    EXPECT_FALSE(gen.closedLoopJob(3, p.jobs_per_tenant, 0));
}

TEST(ServiceTraffic, BurstyAndDiurnalProfilesGenerate)
{
    for (TrafficProfile profile :
         {TrafficProfile::Bursty, TrafficProfile::Diurnal}) {
        TrafficParams p = smallOpenLoop();
        p.profile = profile;
        p.horizon_cycles = 500'000;
        const auto jobs = TrafficGenerator(p).openLoopArrivals();
        EXPECT_FALSE(jobs.empty())
            << trafficProfileName(profile);
    }
}

// ---------------------------------------------------------------------
// Admission queue backpressure.
// ---------------------------------------------------------------------

TEST(ServiceQueue, DepthLimitShedsWithCountedReason)
{
    AdmissionParams limits;
    limits.max_depth = 3;
    limits.max_tenant_inflight = 100;
    OffloadQueue queue(limits);
    OffloadJob job;
    for (int i = 0; i < 5; ++i) {
        job.tenant = i; // Distinct tenants: only depth can refuse.
        const RejectReason r = queue.offer(job);
        EXPECT_EQ(int(r), int(i < 3 ? RejectReason::None
                                    : RejectReason::QueueFull));
    }
    EXPECT_EQ(queue.depth(), 3u);
    EXPECT_EQ(queue.submitted(), 5u);
    EXPECT_EQ(queue.accepted(), 3u);
    EXPECT_EQ(queue.rejected(RejectReason::QueueFull), 2u);
    EXPECT_EQ(queue.accepted() + queue.rejectedTotal(),
              queue.submitted());
}

TEST(ServiceQueue, TenantInflightLimitCoversExecutingJobs)
{
    AdmissionParams limits;
    limits.max_depth = 100;
    limits.max_tenant_inflight = 2;
    OffloadQueue queue(limits);
    OffloadJob job;
    job.tenant = 4;
    EXPECT_EQ(int(queue.offer(job)), int(RejectReason::None));
    EXPECT_EQ(int(queue.offer(job)), int(RejectReason::None));
    EXPECT_EQ(int(queue.offer(job)), int(RejectReason::TenantLimit));

    // Dispatch does NOT free the slot — the job is still in flight.
    const OffloadJob taken = queue.take(0);
    EXPECT_EQ(int(queue.offer(job)), int(RejectReason::TenantLimit));
    // Completion does.
    queue.onComplete(taken);
    EXPECT_EQ(int(queue.offer(job)), int(RejectReason::None));
    // Another tenant was never affected.
    OffloadJob other;
    other.tenant = 9;
    EXPECT_EQ(int(queue.offer(other)), int(RejectReason::None));
}

TEST(ServiceQueue, DrainingRefusesEverythingAndIdsStayOrdered)
{
    OffloadQueue queue(AdmissionParams{});
    OffloadJob job;
    EXPECT_EQ(int(queue.offer(job)), int(RejectReason::None));
    EXPECT_EQ(int(queue.offer(job)), int(RejectReason::None));
    EXPECT_EQ(queue.pending()[0].id, 0u);
    EXPECT_EQ(queue.pending()[1].id, 1u);
    queue.stopAdmission();
    EXPECT_EQ(int(queue.offer(job)), int(RejectReason::Draining));
    EXPECT_EQ(queue.rejected(RejectReason::Draining), 1u);
    EXPECT_EQ(queue.depth(), 2u); // Already-admitted jobs remain.
}

TEST(ServiceQueue, OutOfRegionGateShedsBeforeQueueDepth)
{
    AdmissionParams limits;
    limits.max_depth = 1;
    limits.out_of_region = [](const OffloadJob &job) {
        return job.kernel == "evil";
    };
    OffloadQueue queue(limits);

    OffloadJob bad;
    bad.kernel = "evil";
    EXPECT_EQ(int(queue.offer(bad)), int(RejectReason::OutOfRegion));
    EXPECT_EQ(queue.rejected(RejectReason::OutOfRegion), 1u);
    EXPECT_EQ(queue.depth(), 0u); // Shed jobs consume no depth.

    OffloadJob good;
    good.kernel = "nn";
    EXPECT_EQ(int(queue.offer(good)), int(RejectReason::None));
    // The depth limit still applies after the gate.
    good.tenant = 1;
    EXPECT_EQ(int(queue.offer(good)), int(RejectReason::QueueFull));
    // Draining outranks the gate.
    queue.stopAdmission();
    EXPECT_EQ(int(queue.offer(bad)), int(RejectReason::Draining));
    EXPECT_EQ(queue.rejected(RejectReason::OutOfRegion), 1u);

    EXPECT_STREQ(rejectReasonName(RejectReason::OutOfRegion),
                 "out_of_region");
}

TEST(ServiceQueue, CertificateGateAdmitsSuiteKernels)
{
    // The real absint-backed gate: every suite kernel's footprint is
    // proven inside (or at worst unknown within) its own region, so
    // nothing legitimate is shed.
    const auto gate =
        makeCertificateGate(accel::AccelParams::m128());
    OffloadJob job;
    job.iterations = 64;
    for (const char *name : {"nn", "kmeans", "bfs", "srad"}) {
        job.kernel = name;
        EXPECT_FALSE(gate(job)) << name;
        EXPECT_FALSE(gate(job)) << name << " (memoized)";
    }
    // Unknown kernels are not the gate's call: admit and let the
    // backend reject.
    job.kernel = "no-such-kernel";
    EXPECT_FALSE(gate(job));
}

// ---------------------------------------------------------------------
// SLO accounting vs hand-computed values.
// ---------------------------------------------------------------------

TEST(ServiceSlo, PerClassBookkeepingMatchesHandComputation)
{
    SloParams params;
    params.latency_target_cycles = {100, 1000, 10'000};
    SloAccounting slo(params);

    // Interactive: latencies 40, 80, 150 (one violation, target 100).
    slo.record(record(0, QosClass::Interactive, 0, 10, 30));
    slo.record(record(0, QosClass::Interactive, 100, 0, 80));
    slo.record(record(1, QosClass::Interactive, 200, 100, 50));
    // Batch: latency 600, no violation against 10000.
    slo.record(record(2, QosClass::Batch, 0, 0, 600));

    const ClassSlo inter = slo.classSummary(QosClass::Interactive);
    EXPECT_EQ(inter.jobs, 3u);
    EXPECT_EQ(inter.violations, 1u);
    EXPECT_DOUBLE_EQ(inter.mean_latency, (40.0 + 80.0 + 150.0) / 3.0);
    EXPECT_DOUBLE_EQ(inter.max_latency, 150.0);
    EXPECT_DOUBLE_EQ(inter.mean_wait, (10.0 + 0.0 + 100.0) / 3.0);
    EXPECT_DOUBLE_EQ(inter.mean_service, (30.0 + 80.0 + 50.0) / 3.0);
    // p50 of {40, 80, 150}: exact 80; estimate within one bucket
    // width above (width = target/32).
    const double width = 100.0 / 32.0;
    EXPECT_GE(inter.p50, 80.0);
    EXPECT_LE(inter.p50, 80.0 + width);

    const ClassSlo batch = slo.classSummary(QosClass::Batch);
    EXPECT_EQ(batch.jobs, 1u);
    EXPECT_EQ(batch.violations, 0u);

    EXPECT_EQ(slo.jobs(), 4u);
    EXPECT_EQ(slo.violations(), 1u);
    EXPECT_EQ(slo.invariantViolations(), 0u);
    // Phase totals: everything was charged to Compute.
    EXPECT_EQ(slo.phaseTotals()[prof::Phase::Compute],
              30u + 80u + 50u + 600u);
    EXPECT_EQ(slo.phaseTotals().total(), 760u);
}

TEST(ServiceSlo, JainFairnessHandComputed)
{
    SloAccounting slo{SloParams{}};
    // Tenants receive service 100, 100, 200 cycles.
    slo.record(record(0, QosClass::Standard, 0, 0, 100));
    slo.record(record(1, QosClass::Standard, 0, 0, 100));
    slo.record(record(2, QosClass::Standard, 0, 0, 200));
    // J = (400)^2 / (3 * (100^2 + 100^2 + 200^2)) = 160000/180000.
    EXPECT_NEAR(slo.jainFairness(), 160000.0 / 180000.0, 1e-12);
    EXPECT_EQ(slo.activeTenants(), 3u);

    SloAccounting even{SloParams{}};
    even.record(record(0, QosClass::Standard, 0, 0, 50));
    even.record(record(1, QosClass::Standard, 0, 0, 50));
    EXPECT_DOUBLE_EQ(even.jainFairness(), 1.0);
}

TEST(ServiceSlo, BrokenBookkeepingIsCountedNotHidden)
{
    SloAccounting slo{SloParams{}};
    // Phase split that does not sum to the service time.
    JobRecord bad = record(0, QosClass::Standard, 0, 5, 100);
    bad.phases[prof::Phase::Compute] = 99;
    slo.record(bad);
    EXPECT_EQ(slo.invariantViolations(), 1u);

    // Wait + service inconsistent with completion - arrival.
    JobRecord torn = record(1, QosClass::Standard, 50, 5, 100);
    torn.completion_cycle += 1;
    slo.record(torn);
    // Both the conservation check and completion==dispatch+service
    // trip on the same record.
    EXPECT_EQ(slo.invariantViolations(), 3u);
}

// ---------------------------------------------------------------------
// End-to-end service runs.
// ---------------------------------------------------------------------

TEST(ServiceRun, SameSeedProducesByteIdenticalReports)
{
    ServiceParams params;
    params.traffic = smallOpenLoop();
    params.backends = 2;
    const ServiceResult a = runService(params);
    const ServiceResult b = runService(params);
    JsonWriter ja, jb;
    writeServiceJson(params, a, ja);
    writeServiceJson(params, b, jb);
    EXPECT_GT(a.completed, 0u);
    EXPECT_EQ(ja.str(), jb.str());
    EXPECT_EQ(a.invariant_violations, 0u);
}

TEST(ServiceRun, ClosedLoopDigestInvariantAcrossBackendCounts)
{
    const ServiceResult one = runService(smallClosedLoop(1));
    const ServiceResult three = runService(smallClosedLoop(3));
    EXPECT_EQ(one.completed, 30u);   // 10 tenants x 3 jobs.
    EXPECT_EQ(three.completed, 30u);
    EXPECT_EQ(closedLoopDigest(one), closedLoopDigest(three));
    EXPECT_EQ(one.invariant_violations, 0u);
    EXPECT_EQ(three.invariant_violations, 0u);

    // The cross-check has teeth: per-(tenant, seq) final memory and
    // architectural state agree between pool sizes.
    std::map<std::pair<int, uint64_t>, std::pair<uint64_t, uint64_t>>
        ref;
    for (const JobRecord &rec : one.records)
        ref[{rec.job.tenant, rec.job.seq}] = {rec.state_digest,
                                              rec.mem_digest};
    ASSERT_EQ(ref.size(), three.records.size());
    for (const JobRecord &rec : three.records) {
        const auto &expect = ref.at({rec.job.tenant, rec.job.seq});
        EXPECT_EQ(rec.state_digest, expect.first);
        EXPECT_EQ(rec.mem_digest, expect.second);
    }
    // With three backends the work actually spread out.
    std::set<int> used;
    for (const JobRecord &rec : three.records)
        used.insert(rec.backend);
    EXPECT_GT(used.size(), 1u);
}

TEST(ServiceRun, KernelSwitchingOnSharedBackendStaysSound)
{
    // One backend executes an interleaved kernel stream; every job's
    // functional digest must match a fresh, never-contaminated
    // backend running the same job alone. This is the config-cache
    // body-tag guarantee end to end (all kernels share a base pc).
    BackendParams bp;
    ServiceBackend shared(0, bp);
    const char *names[] = {"nn", "kmeans", "nn", "hotspot", "kmeans",
                           "nn"};
    for (uint64_t i = 0; i < 6; ++i) {
        OffloadJob job;
        job.tenant = int(i);
        job.kernel = names[i];
        job.iterations = 64;
        const JobRecord got = shared.execute(job, 1000);
        ServiceBackend fresh(1, bp);
        const JobRecord want = fresh.execute(job, 1000);
        EXPECT_EQ(got.state_digest, want.state_digest) << names[i];
        EXPECT_EQ(got.mem_digest, want.mem_digest) << names[i];
        EXPECT_EQ(got.offloaded, want.offloaded) << names[i];
    }
    // The interleaved stream re-prepared on every kernel switch.
    EXPECT_GT(shared.cacheTagConflicts(), 0u);
}

TEST(ServiceRun, BackpressureAccountingStaysConserved)
{
    ServiceParams params;
    params.traffic = smallOpenLoop();
    params.traffic.tenants = 12;
    params.traffic.mean_interarrival = 4'000.0;
    params.admission.max_depth = 4;
    params.admission.max_tenant_inflight = 2;
    params.backends = 1;
    const ServiceResult r = runService(params);
    EXPECT_GT(r.rejectedTotal(), 0u);
    EXPECT_EQ(r.submitted, r.accepted + r.rejectedTotal());
    EXPECT_EQ(r.accepted, r.completed);
    EXPECT_EQ(r.invariant_violations, 0u);
    // Shed jobs are attributed to reasons, not a lump.
    EXPECT_EQ(r.rejectedTotal(),
              r.rejects[size_t(RejectReason::QueueFull)] +
                  r.rejects[size_t(RejectReason::TenantLimit)] +
                  r.rejects[size_t(RejectReason::Draining)]);
}

TEST(ServiceRun, QosStrictPolicyFavorsInteractiveTails)
{
    ServiceParams params;
    params.traffic = smallOpenLoop();
    params.traffic.tenants = 16;
    params.traffic.mean_interarrival = 3'000.0; // Saturating.
    params.backends = 1;
    params.policy = DispatchPolicy::QosStrict;
    const ServiceResult strict = runService(params);
    ASSERT_GT(strict.completed, 0u);
    EXPECT_EQ(strict.invariant_violations, 0u);
    const ClassSlo inter =
        strict.slo.classSummary(QosClass::Interactive);
    const ClassSlo batch = strict.slo.classSummary(QosClass::Batch);
    if (inter.jobs > 0 && batch.jobs > 0) {
        EXPECT_LE(inter.mean_wait, batch.mean_wait + 1.0);
    }
}

TEST(ServiceRun, CoScheduledBatchesStayExact)
{
    ServiceParams params;
    params.traffic = smallOpenLoop();
    params.traffic.tenants = 10;
    params.traffic.mean_interarrival = 2'000.0; // Deep queue.
    params.traffic.kernels = {"nn", "kmeans"};  // Batchable mix.
    params.backends = 1;
    params.backend.sched_ways = 2;
    const ServiceResult r = runService(params);
    EXPECT_GT(r.completed, 0u);
    EXPECT_EQ(r.accepted, r.completed);
    EXPECT_EQ(r.invariant_violations, 0u);
    EXPECT_GT(r.backends.at(0).batches, 0u);
}

TEST(ServiceRun, GracefulDrainCompletesInFlightAndShedsTheRest)
{
    std::atomic<bool> stop{false};
    ServiceParams params;
    params.traffic = smallOpenLoop();
    params.traffic.tenants = 12;
    params.traffic.mean_interarrival = 5'000.0;
    params.backends = 2;
    params.stop = &stop;
    params.progress_every = 1;
    uint64_t at_stop = 0;
    params.progress = [&](const ServiceProgress &p) {
        if (p.completed >= 20 && !stop.load()) {
            at_stop = p.completed;
            stop.store(true);
        }
    };
    const ServiceResult r = runService(params);
    ASSERT_TRUE(r.stopped);
    EXPECT_GE(r.completed, at_stop);
    // Everything admitted before the stop still completed...
    EXPECT_EQ(r.accepted, r.completed);
    // ...the rest was shed as Draining, and nothing went missing.
    EXPECT_GT(r.rejects[size_t(RejectReason::Draining)], 0u);
    EXPECT_EQ(r.submitted, r.accepted + r.rejectedTotal());
    EXPECT_EQ(r.invariant_violations, 0u);

    // The same workload without the stop completes strictly more.
    ServiceParams full = params;
    full.stop = nullptr;
    full.progress = nullptr;
    const ServiceResult all = runService(full);
    EXPECT_GT(all.completed, r.completed);
    EXPECT_FALSE(all.stopped);
}
